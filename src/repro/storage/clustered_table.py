"""A table stored as a sequence of bounded-size clusters.

``ClusteredTable.from_table`` splits a table into clusters of at most ``S``
rows.  Two splitting policies are provided:

* ``"sequential"`` keeps the incoming row order (mirrors how pages fill up as
  rows arrive — naturally produces value locality when the source data is
  sorted or time-ordered),
* ``"sorted"`` sorts by a chosen dimension first, which yields strongly
  skewed per-cluster value ranges — the regime where distribution-aware
  cluster sampling pays off most and where the cluster-pruning metadata
  (per-cluster min/max) is effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import StorageError
from .cluster import Cluster
from .layout import ClusterLayout
from .table import Table

__all__ = ["ClusteredTable"]


@dataclass
class ClusteredTable:
    """A table materialised as clusters of at most ``cluster_size`` rows."""

    clusters: tuple[Cluster, ...]
    cluster_size: int

    def __post_init__(self) -> None:
        if self.cluster_size < 1:
            raise StorageError(f"cluster_size must be >= 1, got {self.cluster_size}")
        self.clusters = tuple(self.clusters)
        for cluster in self.clusters:
            if cluster.nominal_size != self.cluster_size:
                raise StorageError(
                    "all clusters must share the table's nominal cluster size "
                    f"({self.cluster_size}), cluster {cluster.cluster_id} has "
                    f"{cluster.nominal_size}"
                )
        self._layout: ClusterLayout | None = None
        self._num_rows = sum(cluster.num_rows for cluster in self.clusters)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Table,
        cluster_size: int,
        *,
        policy: str = "sequential",
        sort_by: str | None = None,
        intra_sort_by: str | None = None,
    ) -> "ClusteredTable":
        """Split ``table`` into clusters of at most ``cluster_size`` rows.

        An **empty** table (0 rows) is accepted and yields a single empty
        placeholder cluster, so a provider can be born empty and
        bootstrapped purely by ingest (:mod:`repro.ingest`); every kernel —
        dense and pruned — answers zero over it, and the first compaction
        replaces the placeholder with real clusters.

        Parameters
        ----------
        policy:
            ``"sequential"`` (keep row order) or ``"sorted"`` (sort by
            ``sort_by``, defaulting to the first dimension, before splitting).
        intra_sort_by:
            Optionally sort the rows *within* each cluster by this dimension
            after splitting.  Cluster membership — and therefore metadata,
            proportions, sampling, and every query answer — is unchanged
            (``Q(C)`` sums the same row multiset); the only effect is that
            the layout's bisection kernels can answer predicates straddling
            a cluster on this dimension in ``O(log rows)``.  The
            ``"sorted"`` policy already yields clusters sorted on its key.
        """
        if cluster_size < 1:
            raise StorageError(f"cluster_size must be >= 1, got {cluster_size}")
        if policy not in ("sequential", "sorted"):
            raise StorageError(f"unknown clustering policy: {policy!r}")
        if intra_sort_by is not None:
            table.schema.dimension(intra_sort_by)
        working = table
        if policy == "sorted":
            key = sort_by or table.schema.dimension_names[0]
            order = np.argsort(table.column(key), kind="stable")
            working = table.take(order)
        clusters: list[Cluster] = []
        for cluster_id, start in enumerate(range(0, max(working.num_rows, 1), cluster_size)):
            chunk = working.slice(start, start + cluster_size)
            if chunk.num_rows == 0 and clusters:
                break
            if intra_sort_by is not None and chunk.num_rows > 1:
                chunk = chunk.take(np.argsort(chunk.column(intra_sort_by), kind="stable"))
            clusters.append(Cluster(cluster_id=cluster_id, rows=chunk, nominal_size=cluster_size))
        if not clusters:
            clusters.append(
                Cluster(cluster_id=0, rows=Table.empty(table.schema), nominal_size=cluster_size)
            )
        return cls(clusters=tuple(clusters), cluster_size=cluster_size)

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self):
        """Schema shared by every cluster."""
        return self.clusters[0].schema

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    @property
    def num_rows(self) -> int:
        """Total number of stored rows across clusters (cached)."""
        return self._num_rows

    def __len__(self) -> int:
        return self.num_clusters

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def cluster(self, cluster_id: int) -> Cluster:
        """Return the cluster with identifier ``cluster_id``."""
        for candidate in self.clusters:
            if candidate.cluster_id == cluster_id:
                return candidate
        raise StorageError(f"no cluster with id {cluster_id}")

    def subset(self, cluster_ids: Sequence[int]) -> tuple[Cluster, ...]:
        """Return the clusters whose ids appear in ``cluster_ids`` (in order)."""
        return tuple(self.cluster(cluster_id) for cluster_id in cluster_ids)

    def layout(self) -> ClusterLayout:
        """The contiguous columnar layout (built lazily, cached).

        Clusters are immutable by convention, so the concatenated arrays stay
        valid for the lifetime of the table.
        """
        if self._layout is None:
            self._layout = ClusterLayout.from_clusters(self.clusters)
        return self._layout

    def to_table(self) -> Table:
        """Reassemble the full table (cluster order)."""
        return Table.concat([cluster.rows for cluster in self.clusters])

    def total_measure(self) -> int:
        """Sum of the measure column across all clusters."""
        return sum(cluster.total_measure() for cluster in self.clusters)

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored clusters."""
        return sum(cluster.rows.memory_bytes() for cluster in self.clusters)
