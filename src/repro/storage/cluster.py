"""A cluster: one bounded-size storage unit of a clustered table.

Clusters play the role of PostgreSQL pages / HDFS blocks in the paper.  Each
cluster knows its identifier, its rows (a :class:`~repro.storage.table.Table`
slice) and the *nominal* cluster size ``S`` that all providers agreed on —
used as the denominator of the ``R_{d>=}(v)`` proportions even when the
cluster holds fewer rows (e.g. the last cluster of a partition).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from .table import Table

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """A bounded-size chunk of a provider's table."""

    cluster_id: int
    rows: Table
    nominal_size: int

    def __post_init__(self) -> None:
        if self.cluster_id < 0:
            raise StorageError(f"cluster_id must be >= 0, got {self.cluster_id}")
        if self.nominal_size < 1:
            raise StorageError(f"nominal_size must be >= 1, got {self.nominal_size}")
        if self.rows.num_rows > self.nominal_size:
            raise StorageError(
                f"cluster {self.cluster_id} holds {self.rows.num_rows} rows, "
                f"more than its nominal size {self.nominal_size}"
            )

    @property
    def num_rows(self) -> int:
        """Actual number of rows stored in this cluster."""
        return self.rows.num_rows

    @property
    def schema(self):
        """Schema of the stored rows."""
        return self.rows.schema

    def total_measure(self) -> int:
        """Sum of the measure column of this cluster.

        Cached after the first call: the rows of a cluster are immutable
        (ingest appends to the delta store and compaction builds *new*
        clusters), so the sum can never change.  Repeated federation-wide
        ``total_measure`` passes — selectivity calibration runs one per
        scenario — then cost O(clusters) instead of O(rows).
        """
        cached = self.__dict__.get("_total_measure")
        if cached is None:
            cached = self.rows.total_measure()
            object.__setattr__(self, "_total_measure", cached)
        return cached

    def __len__(self) -> int:
        return self.num_rows
