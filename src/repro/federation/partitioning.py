"""Horizontal partitioning strategies, plus cost-aware work packing.

The paper horizontally partitions each dataset equally across four providers;
skewed and value-based partitioners are provided as well because the
allocation phase only pays off when providers hold *different* amounts of
query-relevant data — the ablation benches exercise those regimes.

:func:`work_balanced_chunks` is the other kind of split: not rows across
providers but *work* across batches.  The serving layer's time-budgeted
scheduler uses it to autopartition a drain's coalesced workload into chunks
whose estimated cost fits a latency budget (see
:mod:`repro.service.costmodel`), and the latency benchmarks share the same
helper so the bench measures exactly the packing the scheduler runs.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from ..errors import FederationError
from ..storage.table import Table
from ..utils.rng import RngLike, ensure_rng

__all__ = [
    "partition_equal",
    "partition_skewed",
    "partition_by_dimension",
    "work_balanced_chunks",
]

_Item = TypeVar("_Item")

# Relative slack on the budget comparison: a chunk whose exact cost sum equals
# the budget must not be split by float rounding (k items of cost c always fit
# a budget of k*c — the equal-cost ≡ count-chunking equivalence).
_BUDGET_RTOL = 1e-9


def _check_parts(num_parts: int) -> None:
    if num_parts < 1:
        raise FederationError(f"num_parts must be >= 1, got {num_parts}")


def partition_equal(table: Table, num_parts: int, *, shuffle: bool = True, rng: RngLike = None) -> list[Table]:
    """Split ``table`` into ``num_parts`` near-equal horizontal partitions."""
    _check_parts(num_parts)
    indices = np.arange(table.num_rows)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    chunks = np.array_split(indices, num_parts)
    return [table.take(chunk) for chunk in chunks]


def partition_skewed(
    table: Table,
    weights: Sequence[float],
    *,
    shuffle: bool = True,
    rng: RngLike = None,
) -> list[Table]:
    """Split ``table`` into partitions whose sizes follow ``weights``.

    Weights are normalised; they do not need to sum to one.
    """
    weight_array = np.asarray(weights, dtype=float)
    if weight_array.ndim != 1 or weight_array.size == 0:
        raise FederationError("weights must be a non-empty one-dimensional sequence")
    if np.any(weight_array < 0) or weight_array.sum() <= 0:
        raise FederationError("weights must be non-negative and not all zero")
    proportions = weight_array / weight_array.sum()
    indices = np.arange(table.num_rows)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    boundaries = np.floor(np.cumsum(proportions) * table.num_rows).astype(int)
    boundaries[-1] = table.num_rows
    partitions: list[Table] = []
    start = 0
    for stop in boundaries:
        partitions.append(table.take(indices[start:stop]))
        start = stop
    return partitions


def work_balanced_chunks(
    items: Sequence[_Item],
    costs: Sequence[float],
    budget: float,
    *,
    max_size: int | None = None,
) -> list[list[_Item]]:
    """Pack ``items`` into consecutive chunks whose cost fits ``budget``.

    Greedy, order-preserving autopartitioning: items are walked in order and
    a chunk grows while its cost sum stays within ``budget`` (and, when
    ``max_size`` is given, its length within that cap).  Every item lands in
    exactly one chunk, in the original order — packing only moves chunk
    boundaries, never reorders — so the serving layer's canonical settlement
    order survives it.  An item whose own cost exceeds the budget gets a
    chunk of its own: the budget bounds *packing*, it never drops work.

    With equal per-item costs ``c`` and ``budget = k * c`` this degenerates
    to count-chunking with chunk size ``k`` exactly.

    Raises
    ------
    FederationError
        ``costs`` misaligned with ``items``, a negative cost, a
        non-positive ``budget``, or a ``max_size`` below one.
    """
    if len(costs) != len(items):
        raise FederationError(
            f"costs must align with items: got {len(costs)} costs "
            f"for {len(items)} items"
        )
    if not budget > 0:
        raise FederationError(f"budget must be positive, got {budget}")
    if max_size is not None and max_size < 1:
        raise FederationError(f"max_size must be >= 1, got {max_size}")
    if any(cost < 0 for cost in costs):
        raise FederationError("costs must be non-negative")
    limit = budget * (1.0 + _BUDGET_RTOL)
    chunks: list[list[_Item]] = []
    current: list[_Item] = []
    current_cost = 0.0
    for item, cost in zip(items, costs):
        full = current and (
            current_cost + cost > limit
            or (max_size is not None and len(current) >= max_size)
        )
        if full:
            chunks.append(current)
            current = []
            current_cost = 0.0
        current.append(item)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def partition_by_dimension(table: Table, dimension: str, num_parts: int) -> list[Table]:
    """Split ``table`` into contiguous value ranges of ``dimension``.

    Produces the strongest inter-provider skew with respect to queries on
    ``dimension``: each provider holds a disjoint slice of its domain.
    """
    _check_parts(num_parts)
    table.schema.dimension(dimension)
    order = np.argsort(table.column(dimension), kind="stable")
    chunks = np.array_split(order, num_parts)
    return [table.take(chunk) for chunk in chunks]
