"""Horizontal partitioning strategies.

The paper horizontally partitions each dataset equally across four providers;
skewed and value-based partitioners are provided as well because the
allocation phase only pays off when providers hold *different* amounts of
query-relevant data — the ablation benches exercise those regimes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FederationError
from ..storage.table import Table
from ..utils.rng import RngLike, ensure_rng

__all__ = ["partition_equal", "partition_skewed", "partition_by_dimension"]


def _check_parts(num_parts: int) -> None:
    if num_parts < 1:
        raise FederationError(f"num_parts must be >= 1, got {num_parts}")


def partition_equal(table: Table, num_parts: int, *, shuffle: bool = True, rng: RngLike = None) -> list[Table]:
    """Split ``table`` into ``num_parts`` near-equal horizontal partitions."""
    _check_parts(num_parts)
    indices = np.arange(table.num_rows)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    chunks = np.array_split(indices, num_parts)
    return [table.take(chunk) for chunk in chunks]


def partition_skewed(
    table: Table,
    weights: Sequence[float],
    *,
    shuffle: bool = True,
    rng: RngLike = None,
) -> list[Table]:
    """Split ``table`` into partitions whose sizes follow ``weights``.

    Weights are normalised; they do not need to sum to one.
    """
    weight_array = np.asarray(weights, dtype=float)
    if weight_array.ndim != 1 or weight_array.size == 0:
        raise FederationError("weights must be a non-empty one-dimensional sequence")
    if np.any(weight_array < 0) or weight_array.sum() <= 0:
        raise FederationError("weights must be non-negative and not all zero")
    proportions = weight_array / weight_array.sum()
    indices = np.arange(table.num_rows)
    if shuffle:
        ensure_rng(rng).shuffle(indices)
    boundaries = np.floor(np.cumsum(proportions) * table.num_rows).astype(int)
    boundaries[-1] = table.num_rows
    partitions: list[Table] = []
    start = 0
    for stop in boundaries:
        partitions.append(table.take(indices[start:stop]))
        start = stop
    return partitions


def partition_by_dimension(table: Table, dimension: str, num_parts: int) -> list[Table]:
    """Split ``table`` into contiguous value ranges of ``dimension``.

    Produces the strongest inter-provider skew with respect to queries on
    ``dimension``: each provider holds a disjoint slice of its domain.
    """
    _check_parts(num_parts)
    table.schema.dimension(dimension)
    order = np.argsort(table.column(dimension), kind="stable")
    chunks = np.array_split(order, num_parts)
    return [table.take(chunk) for chunk in chunks]
