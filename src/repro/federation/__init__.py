"""Simulated federation: providers, aggregator, network, and SMC.

The federation is simulated in-process: every exchanged message goes through
a :class:`~repro.federation.network.SimulatedNetwork` that counts messages
and bytes and charges a configurable latency/bandwidth cost, and the secure
multiparty computation option is provided by
:class:`~repro.federation.smc.SMCSimulator` (additive secret sharing plus a
calibrated cost model).
"""

from .aggregator import Aggregator
from .messages import (
    AllocationMessage,
    EstimateMessage,
    IngestAck,
    IngestRequest,
    QueryRequest,
    SummaryMessage,
)
from .network import NetworkStats, SimulatedNetwork
from .partitioning import partition_equal, partition_skewed, partition_by_dimension
from .provider import DataProvider
from .smc import SecretShares, SMCSimulator

__all__ = [
    "DataProvider",
    "Aggregator",
    "SimulatedNetwork",
    "NetworkStats",
    "SMCSimulator",
    "SecretShares",
    "QueryRequest",
    "SummaryMessage",
    "AllocationMessage",
    "EstimateMessage",
    "IngestRequest",
    "IngestAck",
    "partition_equal",
    "partition_skewed",
    "partition_by_dimension",
]
