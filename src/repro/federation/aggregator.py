"""Aggregator: drives the query lifecycle of Figure 3(a).

The aggregator never sees raw rows.  It forwards the query, collects the
DP-noised summaries, solves the allocation problem, distributes allocations,
collects the local estimates, and combines them — either by plain summation
(each provider already added its own Laplace noise) or through the simulated
SMC path (oblivious sum of un-noised estimates + a single Laplace noise
calibrated with the maximum smooth sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import SystemConfig
from ..core.accounting import QueryBudget
from ..core.allocation import AllocationProblem, solve_allocation
from ..core.result import ExecutionTrace, ProviderReport
from ..dp.mechanisms import LaplaceMechanism
from ..errors import ProtocolError
from ..query.model import RangeQuery
from ..utils.rng import RngLike, derive_rng
from ..utils.timing import Stopwatch
from .messages import AllocationMessage, EstimateMessage, QueryRequest, SummaryMessage
from .network import SimulatedNetwork
from .provider import DataProvider
from .smc import SMCSimulator

__all__ = ["Aggregator", "FederatedAnswer"]


@dataclass(frozen=True)
class FederatedAnswer:
    """The aggregator's combined answer plus the per-provider reports."""

    value: float
    noise_injected: float
    used_smc: bool
    provider_reports: tuple[ProviderReport, ...]
    trace: ExecutionTrace


@dataclass
class Aggregator:
    """Coordinates one federation of data providers."""

    providers: Sequence[DataProvider]
    config: SystemConfig
    network: SimulatedNetwork = field(default_factory=SimulatedNetwork)
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not self.providers:
            raise ProtocolError("an aggregator needs at least one provider")
        self._rng = derive_rng(self.rng, "aggregator")
        self._next_query_id = 0

    # -- public API -------------------------------------------------------------

    def execute_query(
        self,
        query: RangeQuery,
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
    ) -> FederatedAnswer:
        """Run the full protocol for one query and return the combined answer."""
        rate = self.config.sampling.sampling_rate if sampling_rate is None else sampling_rate
        if not 0 < rate < 1:
            raise ProtocolError(f"sampling_rate must be in (0, 1), got {rate}")
        smc = self.config.use_smc_for_result if use_smc is None else use_smc

        query_id = self._next_query_id
        self._next_query_id += 1
        stopwatch = Stopwatch()
        network_before = self.network.snapshot()

        request = QueryRequest(query_id=query_id, query=query, sampling_rate=rate)
        with stopwatch.measure("allocation"):
            summaries = self._collect_summaries(request, budget)
            allocations = self._allocate(request, summaries, rate)
        with stopwatch.measure("local_answering"):
            answers = self._collect_answers(allocations, budget, smc)
        with stopwatch.measure("combination"):
            value, noise = self._combine(answers, budget, smc)

        for provider in self.providers:
            provider.forget(query_id)

        network_after = self.network.snapshot()
        reports = tuple(answer.report for answer in answers)
        trace = ExecutionTrace(
            phase_seconds=stopwatch.as_dict(),
            simulated_network_seconds=network_after.simulated_seconds
            - network_before.simulated_seconds,
            messages_sent=network_after.messages - network_before.messages,
            bytes_sent=network_after.bytes_sent - network_before.bytes_sent,
            clusters_scanned=sum(report.sampled_clusters for report in reports),
            clusters_available=sum(provider.num_clusters for provider in self.providers),
            rows_scanned=sum(report.rows_scanned for report in reports),
            rows_available=sum(report.rows_available for report in reports),
            smc_operations=0,
        )
        return FederatedAnswer(
            value=value,
            noise_injected=noise,
            used_smc=smc,
            provider_reports=reports,
            trace=trace,
        )

    # -- protocol phases ---------------------------------------------------------

    def _collect_summaries(
        self, request: QueryRequest, budget: QueryBudget
    ) -> list[SummaryMessage]:
        self.network.send(request.payload_bytes(), copies=len(self.providers))
        summaries: list[SummaryMessage] = []
        for provider in self.providers:
            summary = provider.prepare_summary(request, budget.epsilon_allocation)
            self.network.send(summary.payload_bytes())
            summaries.append(summary)
        return summaries

    def _allocate(
        self, request: QueryRequest, summaries: Sequence[SummaryMessage], rate: float
    ) -> list[AllocationMessage]:
        problems = [
            AllocationProblem(
                provider_id=summary.provider_id,
                noisy_cluster_count=summary.noisy_cluster_count,
                noisy_avg_proportion=summary.noisy_avg_proportion,
            )
            for summary in summaries
        ]
        results = solve_allocation(
            problems, rate, min_allocation=self.config.sampling.min_allocation
        )
        allocations = []
        for result in results:
            message = AllocationMessage(
                query_id=request.query_id,
                provider_id=result.provider_id,
                sample_size=result.sample_size,
            )
            self.network.send(message.payload_bytes())
            allocations.append(message)
        return allocations

    def _collect_answers(
        self,
        allocations: Sequence[AllocationMessage],
        budget: QueryBudget,
        use_smc: bool,
    ):
        providers_by_id = {provider.provider_id: provider for provider in self.providers}
        answers = []
        for allocation in allocations:
            provider = providers_by_id.get(allocation.provider_id)
            if provider is None:
                raise ProtocolError(f"unknown provider {allocation.provider_id!r}")
            answer = provider.answer(allocation, budget, use_smc=use_smc)
            self.network.send(answer.message.payload_bytes())
            answers.append(answer)
        return answers

    def _combine(
        self, answers, budget: QueryBudget, use_smc: bool
    ) -> tuple[float, float]:
        messages: list[EstimateMessage] = [answer.message for answer in answers]
        if not use_smc:
            total = sum(message.value for message in messages)
            noise = sum(answer.report.local_noise for answer in answers)
            return float(total), float(noise)

        smc = SMCSimulator(
            config=self.config.smc,
            num_parties=max(2, len(self.providers)),
            rng=derive_rng(self._rng, "smc"),
        )
        shared_estimates = [smc.share(message.value) for message in messages]
        shared_sensitivities = [smc.share(message.smooth_sensitivity) for message in messages]
        total = smc.reconstruct(smc.secure_sum(shared_estimates))
        max_sensitivity = smc.secure_max(shared_sensitivities)
        mechanism = LaplaceMechanism(
            epsilon=budget.epsilon_estimation,
            sensitivity=2.0 * max_sensitivity,
            rng=derive_rng(self._rng, "smc-noise"),
        )
        noise = float(mechanism.sample_noise())
        # Charge the SMC exchange to the simulated network so the trace shows it.
        self.network.send(smc.cost.bytes_exchanged)
        return float(total) + noise, noise
