"""Aggregator: drives the query lifecycle of Figure 3(a), one batch at a time.

The aggregator never sees raw rows.  It forwards the workload, collects the
DP-noised summaries, solves the per-query allocation problems, distributes
allocations, collects the local estimates, and combines them — either by
plain summation (each provider already added its own Laplace noise) or
through the simulated SMC path (oblivious sum of un-noised estimates + a
single Laplace noise calibrated with the maximum smooth sensitivity).

:meth:`Aggregator.execute_batch` amortises the summary / allocation /
estimate phases across a whole workload: each provider is contacted once per
phase with every query of the batch, and the per-provider work can optionally
fan out to a thread pool or to persistent per-provider worker processes over
shared-memory column buffers (:class:`~repro.config.ParallelismConfig`; see
:mod:`repro.federation.procpool` for the process backend).  The single-query
:meth:`execute_query` is a batch of one, so both paths share one
implementation and produce bit-identical results for the same seed.  An
aggregator using the process backend owns worker processes and shared
blocks — release them with :meth:`Aggregator.close` (or use the aggregator
as a context manager).

When the providers' release caches are enabled
(:class:`~repro.config.CacheConfig`), the aggregator additionally tracks
which summaries and estimates were served from cache and prices each query
accordingly: a provider that re-served a release spent nothing on it, and
the federation-wide charge of a query is the parallel composition (maximum)
of the per-provider spends.  :meth:`Aggregator.plan_reuse` exposes the
pre-execution view of that split for budget admission.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..cache.planner import ReusePlan, ReusePlanner
from ..config import SystemConfig
from ..core.accounting import QueryBudget
from ..core.allocation import AllocationProblem, solve_allocation
from ..core.result import ExecutionTrace, ProviderReport
from ..dp.mechanisms import LaplaceMechanism
from ..errors import ProtocolError
from ..ingest.delta import IngestReceipt, validate_rows
from ..query.model import RangeQuery
from ..storage.table import Table
from ..utils.rng import RngLike, derive_rng
from ..utils.timing import Stopwatch
from .messages import (
    AllocationMessage,
    EstimateMessage,
    IngestAck,
    IngestRequest,
    QueryRequest,
    SummaryMessage,
)
from .network import SimulatedNetwork
from .procpool import ProviderProcessPool
from .provider import DataProvider, LocalAnswer
from .smc import SMCSimulator

__all__ = ["Aggregator", "FederatedAnswer"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class FederatedAnswer:
    """The aggregator's combined answer plus the per-provider reports.

    Attributes
    ----------
    value:
        The combined DP answer.
    noise_injected:
        Total noise added across providers (or the single SMC noise).
    used_smc:
        Whether the SMC combination path produced the value.
    provider_reports:
        One diagnostic report per provider, in federation order.
    trace:
        Work / timing / communication / reuse accounting.
    epsilon_charged, delta_charged:
        What this query actually cost the end user.  Equal to the full
        per-query budget when every release was fresh; lower (down to zero)
        when providers re-served cached releases, because post-processing
        is free and spends compose in parallel across disjoint providers.
    """

    value: float
    noise_injected: float
    used_smc: bool
    provider_reports: tuple[ProviderReport, ...]
    trace: ExecutionTrace
    epsilon_charged: float = 0.0
    delta_charged: float = 0.0


@dataclass
class _QueryAccounting:
    """Per-query network counters accumulated during a batch."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0


@dataclass
class Aggregator:
    """Coordinates one federation of data providers."""

    providers: Sequence[DataProvider]
    config: SystemConfig
    network: SimulatedNetwork = field(default_factory=SimulatedNetwork)
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not self.providers:
            raise ProtocolError("an aggregator needs at least one provider")
        self._rng = derive_rng(self.rng, "aggregator")
        self._next_query_id = 0
        self._process_pool: ProviderProcessPool | None = None
        for provider in self.providers:
            # Eager invalidation: a provider re-clustering (rebuild_layout or
            # compaction) immediately tears down the process-pool workers and
            # their shared-memory snapshots of the dead layout, instead of
            # waiting for the lazy epoch-tuple check on the next batch.
            provider.subscribe_layout_change(self._on_provider_layout_change)

    def _on_provider_layout_change(self, _provider: DataProvider) -> None:
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut down the process-backend workers and shared blocks (idempotent).

        A no-op for the sequential and thread backends; safe to call always.
        """
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    def __enter__(self) -> "Aggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def _use_process_backend(self) -> bool:
        parallelism = self.config.parallelism
        return parallelism.enabled and parallelism.backend == "process"

    def _ensure_process_pool(self) -> ProviderProcessPool:
        if self._process_pool is not None and self._process_pool.layout_epochs != tuple(
            provider.layout_epoch for provider in self.providers
        ):
            # A provider re-clustered since the workers snapshotted their
            # layouts; rebuild the pool so workers can never serve releases
            # of a layout that no longer exists.
            self._process_pool.close()
            self._process_pool = None
        if self._process_pool is None:
            self._process_pool = ProviderProcessPool(
                self.providers, self.config.parallelism
            )
        return self._process_pool

    # -- public API -------------------------------------------------------------

    def execute_query(
        self,
        query: RangeQuery,
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
    ) -> FederatedAnswer:
        """Run the full protocol for one query and return the combined answer."""
        return self.execute_batch(
            [query], budget, sampling_rate=sampling_rate, use_smc=use_smc
        )[0]

    def execute_batch(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
        seed_tokens: Sequence[tuple[int, ...] | None] | None = None,
    ) -> list[FederatedAnswer]:
        """Run the full protocol for a workload and return per-query answers.

        All queries of the batch march through the three protocol phases
        together: one summary round-trip per provider for the whole workload,
        one allocation solve per query, one answering round-trip per provider,
        and one combination per query.  Session state is always released —
        even when a phase raises — so providers cannot leak per-query state.

        ``seed_tokens`` (aligned with ``queries`` when given) pins each
        query's provider-side noise streams to a caller-chosen key instead of
        the providers' positional root streams — see
        :attr:`~repro.federation.messages.QueryRequest.seed_material`.  The
        multi-tenant scheduler passes per-``(tenant, sequence)`` tokens so
        coalescing never changes a tenant's answers.
        """
        if not queries:
            return []
        if seed_tokens is not None and len(seed_tokens) != len(queries):
            raise ProtocolError(
                f"seed_tokens must align with queries: got {len(seed_tokens)} tokens "
                f"for {len(queries)} queries"
            )
        rate = self.config.sampling.sampling_rate if sampling_rate is None else sampling_rate
        if not 0 < rate < 1:
            raise ProtocolError(f"sampling_rate must be in (0, 1), got {rate}")
        smc = self.config.use_smc_for_result if use_smc is None else use_smc

        num_queries = len(queries)
        first_id = self._next_query_id
        self._next_query_id += num_queries
        requests = [
            QueryRequest(
                query_id=first_id + index,
                query=query,
                sampling_rate=rate,
                seed_material=None if seed_tokens is None else seed_tokens[index],
            )
            for index, query in enumerate(queries)
        ]
        accounting = [_QueryAccounting() for _ in requests]
        stopwatch = Stopwatch()

        try:
            with stopwatch.measure("allocation"):
                summaries, summary_reuse = self._collect_summaries(
                    requests, budget, accounting
                )
                allocations = self._allocate(requests, summaries, rate, accounting)
            with stopwatch.measure("local_answering"):
                answers, answer_reuse = self._collect_answers(
                    allocations, budget, smc, accounting
                )
            with stopwatch.measure("combination"):
                combined = [
                    self._combine(
                        [provider_answers[index] for provider_answers in answers],
                        budget,
                        smc,
                        accounting[index],
                    )
                    for index in range(num_queries)
                ]
        finally:
            # Providers must never accumulate per-query state, even when a
            # phase fails between summary and answer.  With the process
            # backend the sessions live in the workers, so the release is
            # routed there too (the parent call is then a cheap no-op).
            query_ids = [request.query_id for request in requests]
            for provider in self.providers:
                provider.forget_batch(query_ids)
            if self._process_pool is not None:
                try:
                    self._process_pool.forget_batch(query_ids)
                except ProtocolError:
                    # A dead or torn-down pool holds no sessions to leak;
                    # don't let the cleanup mask the phase's own exception.
                    self._process_pool.close()
                    self._process_pool = None

        phase_seconds = stopwatch.as_dict()
        clusters_available = sum(provider.num_clusters for provider in self.providers)
        results: list[FederatedAnswer] = []
        for index in range(num_queries):
            value, noise = combined[index]
            reports = tuple(
                provider_answers[index].report for provider_answers in answers
            )
            epsilon_charged, delta_charged = self._query_charge(
                budget,
                [provider_reuse[index] for provider_reuse in summary_reuse],
                [provider_reuse[index] for provider_reuse in answer_reuse],
            )
            trace = ExecutionTrace(
                # Wall-clock phases are measured per batch; each query carries
                # its amortised share (exact for a batch of one).
                phase_seconds={
                    name: seconds / num_queries for name, seconds in phase_seconds.items()
                },
                simulated_network_seconds=accounting[index].simulated_seconds,
                messages_sent=accounting[index].messages,
                bytes_sent=accounting[index].bytes_sent,
                clusters_scanned=sum(report.sampled_clusters for report in reports),
                clusters_available=clusters_available,
                rows_scanned=sum(report.rows_scanned for report in reports),
                rows_available=sum(report.rows_available for report in reports),
                smc_operations=0,
                summary_cache_hits=sum(
                    provider_reuse[index] for provider_reuse in summary_reuse
                ),
                answer_cache_hits=sum(
                    provider_reuse[index] for provider_reuse in answer_reuse
                ),
            )
            results.append(
                FederatedAnswer(
                    value=value,
                    noise_injected=noise,
                    used_smc=smc,
                    provider_reports=reports,
                    trace=trace,
                    epsilon_charged=epsilon_charged,
                    delta_charged=delta_charged,
                )
            )
        return results

    def ingest(
        self, partitions: Sequence[Table | None]
    ) -> list[IngestReceipt | None]:
        """Route one batch of appended rows to each provider's delta store.

        Parameters
        ----------
        partitions:
            One table (or ``None`` / empty for "nothing") per provider, in
            federation order.

        Returns
        -------
        list of IngestReceipt or None
            One receipt per provider that received rows, aligned with the
            federation order.

        Notes
        -----
        Each non-empty partition is charged to the simulated network under
        the ``"ingest"`` traffic class (request scaling with the row count,
        plus a constant-size ack), so Figure-1-style communication
        accounting of the query protocol stays untouched.  With the process
        backend active, the append is mirrored onto the provider's worker
        first, keeping both views of the buffer in lockstep; a compaction
        triggered by the append bumps the provider's layout epoch, which
        eagerly tears the worker pool down for a rebuild on the folded
        state.
        """
        if len(partitions) != len(self.providers):
            raise ProtocolError(
                f"ingest needs one partition per provider: got {len(partitions)} "
                f"for {len(self.providers)} providers"
            )
        # All-or-nothing validation BEFORE any provider is touched: a bad
        # partition must not leave the federation half-applied (a retry
        # would duplicate the partitions that did land).
        for provider, rows in zip(self.providers, partitions):
            if rows is not None and rows.num_rows:
                validate_rows(provider.table.schema, rows)
        receipts: list[IngestReceipt | None] = []
        for index, (provider, rows) in enumerate(zip(self.providers, partitions)):
            if rows is None or rows.num_rows == 0:
                receipts.append(None)
                continue
            request = IngestRequest(
                provider_id=provider.provider_id,
                num_rows=rows.num_rows,
                num_columns=len(rows.schema.column_names),
            )
            self.network.send(request.payload_bytes(), message_class="ingest")
            if self._process_pool is not None:
                self._process_pool.ingest(index, rows)
            receipt = provider.ingest_rows(rows)
            ack = IngestAck(
                provider_id=provider.provider_id,
                delta_watermark=receipt.delta_watermark,
                layout_epoch=receipt.layout_epoch,
                compacted=receipt.compacted,
            )
            self.network.send(ack.payload_bytes(), message_class="ingest")
            receipts.append(receipt)
        return receipts

    def plan_reuse(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
    ) -> ReusePlan:
        """Preview which queries of a workload are fully served by the caches.

        Delegates to :class:`~repro.cache.planner.ReusePlanner` with this
        federation's providers and allocation floor.  Never mutates any
        cache; used by the system facade for budget-aware batch admission.
        """
        rate = self.config.sampling.sampling_rate if sampling_rate is None else sampling_rate
        smc = self.config.use_smc_for_result if use_smc is None else use_smc
        planner = ReusePlanner(
            providers=self.providers,
            min_allocation=self.config.sampling.min_allocation,
        )
        return planner.preview(queries, budget, rate, use_smc=smc)

    @staticmethod
    def _query_charge(
        budget: QueryBudget,
        summary_hits: Sequence[bool],
        answer_hits: Sequence[bool],
    ) -> tuple[float, float]:
        """Actual ``(epsilon, delta)`` cost of one query across the federation.

        Each provider sequentially spends only the phases it released fresh
        (cache hits are post-processing); providers hold disjoint partitions,
        so the end-user charge is the parallel composition — the maximum —
        of the per-provider spends.  With every release fresh this equals
        the full ``(epsilon_total, delta)``, bit-for-bit.
        """
        epsilon = 0.0
        delta = 0.0
        for summary_hit, answer_hit in zip(summary_hits, answer_hits):
            spent = 0.0 if summary_hit else budget.epsilon_allocation
            if not answer_hit:
                spent = spent + budget.epsilon_sampling + budget.epsilon_estimation
            epsilon = max(epsilon, spent)
            delta = max(delta, 0.0 if answer_hit else budget.delta)
        return epsilon, delta

    # -- provider fan-out --------------------------------------------------------

    def _map_providers(self, task: Callable[[int, DataProvider], _T]) -> list[_T]:
        """Apply ``task(index, provider)`` to every provider, optionally pooled.

        Provider order is preserved.  Each provider owns an independent RNG
        derivation tree, so the parallel and sequential fan-outs are
        bit-identical; only wall-clock changes.
        """
        parallelism = self.config.parallelism
        if not parallelism.enabled or len(self.providers) <= 1:
            return [task(index, provider) for index, provider in enumerate(self.providers)]
        workers = parallelism.resolve_workers(len(self.providers))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda pair: task(pair[0], pair[1]), enumerate(self.providers))
            )

    # -- protocol phases ---------------------------------------------------------

    def _send(
        self,
        payload_bytes: int,
        accounting: _QueryAccounting,
        *,
        copies: int = 1,
    ) -> None:
        cost = self.network.send(payload_bytes, copies=copies)
        accounting.messages += copies
        accounting.bytes_sent += copies * payload_bytes
        accounting.simulated_seconds += cost

    def _send_uniform(
        self,
        payload_bytes: int,
        accounting: Sequence[_QueryAccounting],
        *,
        copies_per_query: int = 1,
    ) -> None:
        """Send one same-size message per query (× ``copies_per_query``).

        One bulk :meth:`SimulatedNetwork.send` charges the network (its cost
        model is linear in copies, so the stats equal per-message sends), and
        each query's accounting receives its exact per-message share.
        """
        num_queries = len(accounting)
        self.network.send(payload_bytes, copies=copies_per_query * num_queries)
        cost = copies_per_query * self.network.config.transfer_cost(payload_bytes)
        payload = copies_per_query * payload_bytes
        for entry in accounting:
            entry.messages += copies_per_query
            entry.bytes_sent += payload
            entry.simulated_seconds += cost

    def _collect_summaries(
        self,
        requests: Sequence[QueryRequest],
        budget: QueryBudget,
        accounting: Sequence[_QueryAccounting],
    ) -> tuple[list[list[SummaryMessage]], list[list[bool]]]:
        """Per-provider summary lists plus per-provider cache-hit flags.

        Both returned lists are aligned with the request order; the flags
        mark summaries the provider re-served from its release cache.
        """
        for index, request in enumerate(requests):
            self._send(request.payload_bytes(), accounting[index], copies=len(self.providers))

        def collect(_: int, provider: DataProvider) -> tuple[list[SummaryMessage], list[bool]]:
            reuse: list[bool] = []
            messages = provider.prepare_summary_batch(
                requests, budget.epsilon_allocation, reuse_out=reuse
            )
            return messages, reuse

        if self._use_process_backend:
            outcomes = self._ensure_process_pool().summary_batch(
                requests, budget.epsilon_allocation
            )
        else:
            outcomes = self._map_providers(collect)
        summaries = [messages for messages, _ in outcomes]
        reuse_flags = [reuse for _, reuse in outcomes]
        for provider_summaries in summaries:
            # Summaries have a data-independent constant size, so one bulk
            # send per provider covers the whole workload.
            self._send_uniform(provider_summaries[0].payload_bytes(), accounting)
        return summaries, reuse_flags

    def _allocate(
        self,
        requests: Sequence[QueryRequest],
        summaries: Sequence[Sequence[SummaryMessage]],
        rate: float,
        accounting: Sequence[_QueryAccounting],
    ) -> list[list[AllocationMessage]]:
        """Per-provider allocation lists, aligned with the request order."""
        per_provider: list[list[AllocationMessage]] = [[] for _ in self.providers]
        for index, request in enumerate(requests):
            problems = [
                AllocationProblem(
                    provider_id=provider_summaries[index].provider_id,
                    noisy_cluster_count=provider_summaries[index].noisy_cluster_count,
                    noisy_avg_proportion=provider_summaries[index].noisy_avg_proportion,
                )
                for provider_summaries in summaries
            ]
            results = solve_allocation(
                problems, rate, min_allocation=self.config.sampling.min_allocation
            )
            for provider_index, result in enumerate(results):
                per_provider[provider_index].append(
                    AllocationMessage(
                        query_id=request.query_id,
                        provider_id=result.provider_id,
                        sample_size=result.sample_size,
                    )
                )
        if per_provider[0]:
            # Allocations have a constant size: one bulk send covers the
            # per-query messages to every provider.
            self._send_uniform(
                per_provider[0][0].payload_bytes(),
                accounting,
                copies_per_query=len(self.providers),
            )
        return per_provider

    def _collect_answers(
        self,
        allocations: Sequence[Sequence[AllocationMessage]],
        budget: QueryBudget,
        use_smc: bool,
        accounting: Sequence[_QueryAccounting],
    ) -> tuple[list[list[LocalAnswer]], list[list[bool]]]:
        """Per-provider answer lists plus per-provider cache-hit flags.

        Both returned lists are aligned with the request order; the flags
        mark local answers the provider re-served from its release cache.
        """
        provider_ids = {provider.provider_id for provider in self.providers}
        for provider_allocations in allocations:
            for message in provider_allocations:
                if message.provider_id not in provider_ids:
                    raise ProtocolError(f"unknown provider {message.provider_id!r}")

        def collect(index: int, provider: DataProvider) -> tuple[list[LocalAnswer], list[bool]]:
            reuse: list[bool] = []
            local_answers = provider.answer_batch(
                allocations[index], budget, use_smc=use_smc, reuse_out=reuse
            )
            return local_answers, reuse

        if self._use_process_backend:
            outcomes = self._ensure_process_pool().answer_batch(
                allocations, budget, use_smc
            )
        else:
            outcomes = self._map_providers(collect)
        answers = [local_answers for local_answers, _ in outcomes]
        reuse_flags = [reuse for _, reuse in outcomes]
        for provider_answers in answers:
            # Estimates have a data-independent constant size as well.
            self._send_uniform(provider_answers[0].message.payload_bytes(), accounting)
        return answers, reuse_flags

    def _combine(
        self,
        answers: Sequence[LocalAnswer],
        budget: QueryBudget,
        use_smc: bool,
        accounting: _QueryAccounting,
    ) -> tuple[float, float]:
        messages: list[EstimateMessage] = [answer.message for answer in answers]
        if not use_smc:
            total = sum(message.value for message in messages)
            noise = sum(answer.report.local_noise for answer in answers)
            return float(total), float(noise)

        smc = SMCSimulator(
            config=self.config.smc,
            num_parties=max(2, len(self.providers)),
            rng=derive_rng(self._rng, "smc"),
        )
        shared_estimates = [smc.share(message.value) for message in messages]
        shared_sensitivities = [smc.share(message.smooth_sensitivity) for message in messages]
        total = smc.reconstruct(smc.secure_sum(shared_estimates))
        max_sensitivity = smc.secure_max(shared_sensitivities)
        mechanism = LaplaceMechanism(
            epsilon=budget.epsilon_estimation,
            sensitivity=2.0 * max_sensitivity,
            rng=derive_rng(self._rng, "smc-noise"),
        )
        noise = float(mechanism.sample_noise())
        # Charge the SMC exchange to the simulated network so the trace shows it.
        self._send(smc.cost.bytes_exchanged, accounting)
        return float(total) + noise, noise
