"""Aggregator: drives the query lifecycle of Figure 3(a), one batch at a time.

The aggregator never sees raw rows.  It forwards the workload, collects the
DP-noised summaries, solves the per-query allocation problems, distributes
allocations, collects the local estimates, and combines them — either by
plain summation (each provider already added its own Laplace noise) or
through the simulated SMC path (oblivious sum of un-noised estimates + a
single Laplace noise calibrated with the maximum smooth sensitivity).

:meth:`Aggregator.execute_batch` amortises the summary / allocation /
estimate phases across a whole workload: each provider is contacted once per
phase with every query of the batch, and the per-provider work can optionally
fan out to a thread pool or to persistent per-provider worker processes over
shared-memory column buffers (:class:`~repro.config.ParallelismConfig`; see
:mod:`repro.federation.procpool` for the process backend).  The single-query
:meth:`execute_query` is a batch of one, so both paths share one
implementation and produce bit-identical results for the same seed.  An
aggregator using the process backend owns worker processes and shared
blocks — release them with :meth:`Aggregator.close` (or use the aggregator
as a context manager).

When the providers' release caches are enabled
(:class:`~repro.config.CacheConfig`), the aggregator additionally tracks
which summaries and estimates were served from cache and prices each query
accordingly: a provider that re-served a release spent nothing on it, and
the federation-wide charge of a query is the parallel composition (maximum)
of the per-provider spends.  :meth:`Aggregator.plan_reuse` exposes the
pre-execution view of that split for budget admission.

**Degradation.**  With :class:`~repro.config.ResilienceConfig` enabled, a
provider that fails a phase — scripted chaos via
:attr:`~repro.config.ParallelismConfig.injected_faults`, a dead or hung
worker process — no longer fails the batch.  The aggregator retries with
backoff (the process pool respawns lost workers from the existing
shared-memory blocks), then drops the provider from the batch: allocation
is re-solved over the survivors, the combined answers carry
``degraded=True`` and the missing provider ids, and
:meth:`_query_charge` prices each query from what was actually *released* —
a provider that never delivered a phase contributes no spend, so the
end-user charge stays exact under partial failure.  Providers that fail
``quarantine_after`` consecutive batches are quarantined (skipped outright)
until :meth:`reinstate` lifts them.  Without resilience, any provider
failure raises :class:`~repro.errors.ProtocolError` exactly as before.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..cache.planner import ReusePlan, ReusePlanner
from ..config import SystemConfig
from ..core.accounting import QueryBudget
from ..core.allocation import AllocationProblem, solve_allocation
from ..core.result import ExecutionTrace, ProviderReport
from ..dp.mechanisms import LaplaceMechanism
from ..errors import (
    InjectedFaultError,
    ProtocolError,
    TransportError,
    TransportTimeoutError,
)
from ..ingest.delta import IngestReceipt, validate_rows
from ..query.model import RangeQuery
from ..storage.table import Table
from ..testing.faults import FaultInjector
from ..utils.rng import RngLike, derive_rng
from ..utils.timing import Stopwatch
from .messages import (
    AllocationMessage,
    EstimateMessage,
    IngestAck,
    IngestRequest,
    QueryRequest,
    SummaryMessage,
)
from .network import NetworkStats, SimulatedNetwork
from .procpool import ProviderProcessPool
from .provider import DataProvider, LocalAnswer
from .smc import SMCSimulator
from .transport import Transport, create_transport

__all__ = ["Aggregator", "FederatedAnswer", "ResilienceStats"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class FederatedAnswer:
    """The aggregator's combined answer plus the per-provider reports.

    Attributes
    ----------
    value:
        The combined DP answer.
    noise_injected:
        Total noise added across providers (or the single SMC noise).
    used_smc:
        Whether the SMC combination path produced the value.
    provider_reports:
        One diagnostic report per *answering* provider, in federation order.
    trace:
        Work / timing / communication / reuse accounting.
    epsilon_charged, delta_charged:
        What this query actually cost the end user.  Equal to the full
        per-query budget when every release was fresh; lower (down to zero)
        when providers re-served cached releases, because post-processing
        is free and spends compose in parallel across disjoint providers.
        Under degradation the charge prices only the releases that were
        actually delivered.
    degraded:
        Whether any provider was missing from the batch that produced this
        answer (the value then covers the survivors' partitions only).
    providers_missing:
        Ids of the providers that failed or were quarantined out of the
        batch, in federation order.  Empty for a healthy batch.
    """

    value: float
    noise_injected: float
    used_smc: bool
    provider_reports: tuple[ProviderReport, ...]
    trace: ExecutionTrace
    epsilon_charged: float = 0.0
    delta_charged: float = 0.0
    degraded: bool = False
    providers_missing: tuple[str, ...] = ()


@dataclass(frozen=True)
class ResilienceStats:
    """Cumulative degradation counters for one aggregator.

    Pool-level counters (respawns, timeouts) come from the process backend
    and stay zero on the serial/thread backends, where a hang is simulated
    as an immediate timeout instead.
    """

    provider_failures: int = 0
    provider_retries: int = 0
    providers_quarantined: int = 0
    degraded_batches: int = 0
    workers_respawned: int = 0
    worker_timeouts: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for metric registries and benchmark harnesses."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass
class _QueryAccounting:
    """Per-query network counters accumulated during a batch."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0


@dataclass
class PhasedBatch:
    """One in-flight batch, split at the protocol's phase boundaries.

    Produced by :meth:`Aggregator.begin_batch` (summary + allocation
    phases done, provider sessions open), advanced by
    :meth:`Aggregator.collect_batch` (answer phase done, sessions
    released), finished by :meth:`Aggregator.settle_batch` (combination —
    pure aggregator-side math over already-collected messages, safe to run
    on a different thread than the next batch's provider phases).  The
    serving layer's overlapped drain pipeline threads this object through
    its dispatcher; :meth:`Aggregator.execute_batch` is the serial
    composition of the three calls and stays bit-identical.

    If a begun batch will never be collected (its pipeline died), call
    :meth:`Aggregator.abandon_batch` so the providers' per-query sessions
    are released — an abandoned session would otherwise block compaction.
    """

    requests: list[QueryRequest]
    budget: QueryBudget
    rate: float
    smc: bool
    degrade: bool
    failed: dict[int, str]
    accounting: list[_QueryAccounting]
    stopwatch: Stopwatch
    summaries: dict[int, list[SummaryMessage]] = field(default_factory=dict)
    summary_reuse: dict[int, list[bool]] = field(default_factory=dict)
    allocations: dict[int, list[AllocationMessage]] = field(default_factory=dict)
    answers: dict[int, list[LocalAnswer]] = field(default_factory=dict)
    answer_reuse: dict[int, list[bool]] = field(default_factory=dict)
    survivors: list[int] = field(default_factory=list)
    clusters_available: int = 0
    providers_missing: tuple[str, ...] = ()
    sessions_released: bool = False
    collected: bool = False
    trace_ctx: tuple[str, str] | None = None
    owns_trace: bool = False


@dataclass
class Aggregator:
    """Coordinates one federation of data providers."""

    providers: Sequence[DataProvider]
    config: SystemConfig
    network: SimulatedNetwork = field(default_factory=SimulatedNetwork)
    rng: RngLike = None
    obs: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.providers:
            raise ProtocolError("an aggregator needs at least one provider")
        self._rng = derive_rng(self.rng, "aggregator")
        self._tracer = getattr(self.obs, "tracer", None)
        self._next_query_id = 0
        self._process_pool: ProviderProcessPool | None = None
        self._batch_counter = 0
        self._fault_injector: FaultInjector | None = None
        if self.config.parallelism.injected_faults is not None:
            self._fault_injector = FaultInjector(self.config.parallelism.injected_faults)
            # The network consults the same injector for message faults, so
            # one schedule drives one deterministic chaos run end to end.
            self.network.fault_injector = self._fault_injector
        # Every provider-phase call goes through the configured transport —
        # direct calls by default, a serializing wire otherwise.  The same
        # injector supplies the transport's scripted faults.
        self._transport: Transport = create_transport(
            self.config.transport,
            self.providers,
            resilience=self.config.resilience,
            tracer=self._tracer,
        )
        self._transport.fault_injector = self._fault_injector
        self._consecutive_failures: dict[int, int] = {}
        self._quarantined: dict[int, str] = {}
        self._degraded_batches = 0
        self._provider_failures = 0
        self._provider_retries = 0
        self._worker_timeouts = 0
        for provider in self.providers:
            # Eager invalidation: a provider re-clustering (rebuild_layout or
            # compaction) immediately tears down the process-pool workers and
            # their shared-memory snapshots of the dead layout, instead of
            # waiting for the lazy epoch-tuple check on the next batch.
            provider.subscribe_layout_change(self._on_provider_layout_change)

    def _on_provider_layout_change(self, _provider: DataProvider) -> None:
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut down the process-backend workers and shared blocks (idempotent).

        A no-op for the sequential and thread backends; safe to call always.
        """
        if self._process_pool is not None:
            self._process_pool.close()
            self._process_pool = None
        self._transport.close()

    def __enter__(self) -> "Aggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def _use_process_backend(self) -> bool:
        parallelism = self.config.parallelism
        return parallelism.enabled and parallelism.backend == "process"

    def _ensure_process_pool(self) -> ProviderProcessPool:
        if self._process_pool is not None and (
            self._process_pool.closed
            or self._process_pool.layout_epochs
            != tuple(provider.layout_epoch for provider in self.providers)
        ):
            # Closed: a previous batch's failure tore the workers down and
            # a fresh pool must be built (returning the dead pool would wedge
            # every later batch).  Epoch mismatch: a provider re-clustered
            # since the workers snapshotted their layouts; rebuild so workers
            # can never serve releases of a layout that no longer exists.
            self._process_pool.close()
            self._process_pool = None
        if self._process_pool is None:
            self._process_pool = ProviderProcessPool(
                self.providers, self.config.parallelism, tracer=self._tracer
            )
        return self._process_pool

    # -- degradation introspection ----------------------------------------------

    @property
    def quarantined_providers(self) -> tuple[str, ...]:
        """Ids of the providers currently quarantined, in federation order."""
        return tuple(
            self.providers[index].provider_id for index in sorted(self._quarantined)
        )

    def reinstate(self, provider_id: str | None = None) -> None:
        """Lift quarantine for one provider (or all of them).

        The consecutive-failure counter resets too, so a reinstated provider
        gets a full ``quarantine_after`` grace again.
        """
        for index in sorted(self._quarantined):
            if provider_id is None or self.providers[index].provider_id == provider_id:
                del self._quarantined[index]
                self._consecutive_failures[index] = 0

    @property
    def resilience_stats(self) -> ResilienceStats:
        """Cumulative degradation counters (aggregator + process pool)."""
        pool = self._process_pool
        return ResilienceStats(
            provider_failures=self._provider_failures
            + (pool.stats.provider_failures if pool is not None else 0),
            provider_retries=self._provider_retries
            + (pool.stats.provider_retries if pool is not None else 0),
            providers_quarantined=len(self._quarantined),
            degraded_batches=self._degraded_batches,
            workers_respawned=pool.stats.workers_respawned if pool is not None else 0,
            worker_timeouts=self._worker_timeouts
            + (pool.stats.worker_timeouts if pool is not None else 0),
        )

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The runtime injector for this aggregator's fault schedule, if any."""
        return self._fault_injector

    @property
    def transport(self) -> Transport:
        """The transport carrying this federation's provider-phase calls."""
        return self._transport

    def _ensure_transport(self) -> Transport:
        if self._transport.closed:
            # A previous batch died mid-protocol and the abnormal-exit path
            # closed the aggregator to reclaim its resources (workers, shared
            # blocks, sockets).  Handing the dead wire out again would wedge
            # every later batch, so rebuild it — carrying the accumulated
            # wire counters forward so traffic accounting stays cumulative.
            stats = self._transport.snapshot_stats()
            self._transport = create_transport(
                self.config.transport,
                self.providers,
                resilience=self.config.resilience,
                tracer=self._tracer,
            )
            self._transport.stats = stats
            self._transport.fault_injector = self._fault_injector
        return self._transport

    @property
    def transport_stats(self) -> NetworkStats:
        """Real framed wire traffic of the transport (all zeros in-process).

        Unlike :attr:`network`'s simulated cost model, these counters
        reflect actual serialized frames: ``messages`` counts frames,
        ``bytes_sent`` counts framed bytes on the (loopback or socket)
        wire, and ``frames_duplicated`` counts discarded duplicate replies.
        """
        return self._transport.snapshot_stats()

    # -- public API -------------------------------------------------------------

    def execute_query(
        self,
        query: RangeQuery,
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
    ) -> FederatedAnswer:
        """Run the full protocol for one query and return the combined answer."""
        return self.execute_batch(
            [query], budget, sampling_rate=sampling_rate, use_smc=use_smc
        )[0]

    def execute_batch(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
        seed_tokens: Sequence[tuple[int, ...] | None] | None = None,
    ) -> list[FederatedAnswer]:
        """Run the full protocol for a workload and return per-query answers.

        All queries of the batch march through the three protocol phases
        together: one summary round-trip per provider for the whole workload,
        one allocation solve per query, one answering round-trip per provider,
        and one combination per query.  Session state is always released —
        even when a phase raises — so providers cannot leak per-query state.

        ``seed_tokens`` (aligned with ``queries`` when given) pins each
        query's provider-side noise streams to a caller-chosen key instead of
        the providers' positional root streams — see
        :attr:`~repro.federation.messages.QueryRequest.seed_material`.  The
        multi-tenant scheduler passes per-``(tenant, sequence)`` tokens so
        coalescing never changes a tenant's answers.

        With resilience enabled a provider failure degrades the batch (see
        the module docstring) instead of raising; the batch still raises
        :class:`~repro.errors.ProtocolError` when fewer than
        ``min_providers`` survive a phase.
        """
        if not queries:
            return []
        phased = self.begin_batch(
            queries,
            budget,
            sampling_rate=sampling_rate,
            use_smc=use_smc,
            seed_tokens=seed_tokens,
        )
        self.collect_batch(phased)
        return self.settle_batch(phased)

    def begin_batch(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
        seed_tokens: Sequence[tuple[int, ...] | None] | None = None,
    ) -> PhasedBatch:
        """Run the summary + allocation phases and return the open batch.

        First half of :meth:`execute_batch`.  On return the providers hold
        per-query sessions pinned to the current layout snapshot; the
        caller must advance the batch with :meth:`collect_batch` (or
        release it with :meth:`abandon_batch`) before any compaction can
        run.  Raises exactly like :meth:`execute_batch`'s first two phases;
        sessions are always released on failure.
        """
        if not queries:
            raise ProtocolError("a batch must contain at least one query")
        if seed_tokens is not None and len(seed_tokens) != len(queries):
            raise ProtocolError(
                f"seed_tokens must align with queries: got {len(seed_tokens)} tokens "
                f"for {len(queries)} queries"
            )
        rate = self.config.sampling.sampling_rate if sampling_rate is None else sampling_rate
        if not 0 < rate < 1:
            raise ProtocolError(f"sampling_rate must be in (0, 1), got {rate}")
        smc = self.config.use_smc_for_result if use_smc is None else use_smc

        if self._fault_injector is not None:
            self._fault_injector.begin_batch(self._batch_counter)
        self._batch_counter += 1
        self._ensure_transport()
        degrade = self.config.resilience.enabled
        # Per-batch failure ledger: provider index -> reason.  Quarantined
        # providers enter it pre-failed and are never contacted.
        failed: dict[int, str] = {}
        if degrade:
            for index, reason in sorted(self._quarantined.items()):
                failed[index] = f"quarantined: {reason}"

        # Trace root: nest under the caller's active span when there is one
        # (the scheduler's per-chunk span), otherwise open a batch-level
        # root trace here.  With tracing disabled ``trace_ctx`` stays None
        # and the requests below are constructed exactly as before.
        trace_ctx = None
        owns_trace = False
        if self._tracer is not None:
            trace_ctx = self._tracer.context()
            if trace_ctx is None:
                trace_ctx = self._tracer.begin_trace(
                    "batch", num_queries=len(queries)
                )
                owns_trace = trace_ctx is not None

        first_id = self._next_query_id
        self._next_query_id += len(queries)
        requests = [
            QueryRequest(
                query_id=first_id + index,
                query=query,
                sampling_rate=rate,
                seed_material=None if seed_tokens is None else seed_tokens[index],
                trace_context=trace_ctx,
            )
            for index, query in enumerate(queries)
        ]
        phased = PhasedBatch(
            requests=requests,
            budget=budget,
            rate=rate,
            smc=smc,
            degrade=degrade,
            failed=failed,
            accounting=[_QueryAccounting() for _ in requests],
            stopwatch=Stopwatch(),
            trace_ctx=trace_ctx,
            owns_trace=owns_trace,
        )
        try:
            with self._phase_span("batch.allocation", phased):
                with phased.stopwatch.measure("allocation"):
                    summaries, summary_reuse = self._collect_summaries(
                        requests, budget, phased.accounting, failed
                    )
                    self._check_survivors(summaries, failed, "summary")
                    allocations = self._allocate(
                        requests, summaries, rate, phased.accounting
                    )
        except BaseException:
            self._release_sessions(phased)
            if owns_trace:
                self._tracer.end_span(trace_ctx, error="batch failed")
            raise
        phased.summaries = summaries
        phased.summary_reuse = summary_reuse
        phased.allocations = allocations
        return phased

    def _phase_span(self, name: str, phased: PhasedBatch):
        """Span for one protocol phase, pinned under the batch's trace root.

        Explicit parenting (instead of contextvar inheritance) because the
        overlapped drain pipeline runs begin/collect/settle on different
        threads.  A cheap ``nullcontext`` when tracing is off or the trace
        was not sampled.
        """
        if self._tracer is None or phased.trace_ctx is None:
            return nullcontext()
        return self._tracer.span(name, parent=phased.trace_ctx)

    def collect_batch(self, phased: PhasedBatch) -> None:
        """Run the answer phase of a begun batch and release its sessions.

        Second half of the provider-facing protocol.  Session state is
        always released — even when the phase raises — so providers cannot
        leak per-query state; on success the quarantine counters advance
        (the batch's provider outcome is final once the answers are in,
        whatever happens during combination).
        """
        try:
            with self._phase_span("batch.local_answering", phased):
                with phased.stopwatch.measure("local_answering"):
                    answers, answer_reuse = self._collect_answers(
                        phased.allocations,
                        phased.budget,
                        phased.smc,
                        phased.accounting,
                        phased.failed,
                    )
                    self._check_survivors(answers, phased.failed, "answer")
        finally:
            # Providers must never accumulate per-query state, even when a
            # phase fails between summary and answer.  With the process
            # backend the sessions live in the workers, so the release is
            # routed there too (the parent call is then a cheap no-op, and
            # both forgets are idempotent for providers that never opened a
            # session this batch).
            self._release_sessions(phased)
        phased.answers = answers
        phased.answer_reuse = answer_reuse
        phased.survivors = sorted(answers)
        # Provider-derived trace inputs are captured here, on the thread
        # that owns provider state: an overlapped pipeline may settle this
        # batch while a later work item (e.g. an ingest-triggered
        # compaction) is already mutating the layouts.
        phased.clusters_available = sum(
            self.providers[provider_index].num_clusters
            for provider_index in phased.survivors
        )
        phased.providers_missing = tuple(
            self.providers[provider_index].provider_id
            for provider_index in sorted(phased.failed)
        )
        phased.collected = True
        if phased.degrade:
            self._update_quarantine(phased.failed)

    def abandon_batch(self, phased: PhasedBatch) -> None:
        """Release a begun batch that will never be collected (idempotent).

        An abandoned pipeline must not leave provider sessions open — they
        would block every later compaction — so the dispatcher's failure
        path routes uncollected batches here.
        """
        self._release_sessions(phased)

    def _release_sessions(self, phased: PhasedBatch) -> None:
        if phased.sessions_released:
            return
        phased.sessions_released = True
        query_ids = [request.query_id for request in phased.requests]
        for index, provider in enumerate(self.providers):
            try:
                self._transport.forget_batch(index, query_ids)
            except TransportError:
                # A broken wire must never leak sessions: the providers
                # live in this process, so release them directly (the
                # forget is idempotent either way).
                provider.forget_batch(query_ids)
        if self._process_pool is not None:
            try:
                self._process_pool.forget_batch(query_ids)
            except ProtocolError:
                # A dead or torn-down pool holds no sessions to leak;
                # don't let the cleanup mask the phase's own exception.
                self._process_pool.close()
                self._process_pool = None

    def settle_batch(self, phased: PhasedBatch) -> list[FederatedAnswer]:
        """Combine a collected batch into per-query answers.

        Pure aggregator-side math over already-collected messages (plus the
        SMC exchange when enabled): no provider state is touched, so the
        serving layer's overlapped pipeline runs this on its settlement
        thread while the dispatcher begins the next chunk's summary phase.
        """
        if not phased.collected:
            raise ProtocolError("settle_batch needs a collected batch")
        num_queries = len(phased.requests)
        budget = phased.budget
        answers = phased.answers
        survivors = phased.survivors
        with self._phase_span("batch.combination", phased):
            with phased.stopwatch.measure("combination"):
                combined = [
                    self._combine(
                        [answers[provider_index][index] for provider_index in survivors],
                        budget,
                        phased.smc,
                        phased.accounting[index],
                    )
                    for index in range(num_queries)
                ]

        phase_seconds = phased.stopwatch.as_dict()
        summary_survivors = sorted(phased.summaries)
        summary_reuse = phased.summary_reuse
        answer_reuse = phased.answer_reuse
        results: list[FederatedAnswer] = []
        for index in range(num_queries):
            value, noise = combined[index]
            reports = tuple(
                answers[provider_index][index].report for provider_index in survivors
            )
            # Charge masks run over every provider that delivered a summary:
            # providers lost before the summary released nothing and spend
            # nothing; providers lost between summary and answer spent only
            # their (fresh) summary release.
            epsilon_charged, delta_charged = self._query_charge(
                budget,
                [summary_reuse[p][index] for p in summary_survivors],
                [
                    answer_reuse[p][index] if p in answer_reuse else True
                    for p in summary_survivors
                ],
                answer_released=[p in answer_reuse for p in summary_survivors],
            )
            trace = ExecutionTrace(
                # Wall-clock phases are measured per batch; each query carries
                # its amortised share (exact for a batch of one).
                phase_seconds={
                    name: seconds / num_queries for name, seconds in phase_seconds.items()
                },
                simulated_network_seconds=phased.accounting[index].simulated_seconds,
                messages_sent=phased.accounting[index].messages,
                bytes_sent=phased.accounting[index].bytes_sent,
                clusters_scanned=sum(report.sampled_clusters for report in reports),
                clusters_available=phased.clusters_available,
                rows_scanned=sum(report.rows_scanned for report in reports),
                rows_available=sum(report.rows_available for report in reports),
                smc_operations=0,
                summary_cache_hits=sum(
                    summary_reuse[p][index] for p in summary_survivors
                ),
                answer_cache_hits=sum(
                    answer_reuse[p][index] for p in sorted(answer_reuse)
                ),
            )
            results.append(
                FederatedAnswer(
                    value=value,
                    noise_injected=noise,
                    used_smc=phased.smc,
                    provider_reports=reports,
                    trace=trace,
                    epsilon_charged=epsilon_charged,
                    delta_charged=delta_charged,
                    degraded=bool(phased.failed),
                    providers_missing=phased.providers_missing,
                )
            )
        if phased.owns_trace:
            self._tracer.end_span(
                phased.trace_ctx,
                degraded=bool(phased.failed),
                providers_missing=len(phased.failed),
            )
        return results

    def ingest(
        self, partitions: Sequence[Table | None]
    ) -> list[IngestReceipt | None]:
        """Route one batch of appended rows to each provider's delta store.

        Parameters
        ----------
        partitions:
            One table (or ``None`` / empty for "nothing") per provider, in
            federation order.

        Returns
        -------
        list of IngestReceipt or None
            One receipt per provider that received rows, aligned with the
            federation order.

        Notes
        -----
        Each non-empty partition is charged to the simulated network under
        the ``"ingest"`` traffic class (request scaling with the row count,
        plus a constant-size ack), so Figure-1-style communication
        accounting of the query protocol stays untouched.  With the process
        backend active, the append is mirrored onto the provider's worker
        first, keeping both views of the buffer in lockstep; a compaction
        triggered by the append bumps the provider's layout epoch, which
        eagerly tears the worker pool down for a rebuild on the folded
        state.
        """
        if len(partitions) != len(self.providers):
            raise ProtocolError(
                f"ingest needs one partition per provider: got {len(partitions)} "
                f"for {len(self.providers)} providers"
            )
        # All-or-nothing validation BEFORE any provider is touched: a bad
        # partition must not leave the federation half-applied (a retry
        # would duplicate the partitions that did land).
        for provider, rows in zip(self.providers, partitions):
            if rows is not None and rows.num_rows:
                validate_rows(provider.table.schema, rows)
        receipts: list[IngestReceipt | None] = []
        for index, (provider, rows) in enumerate(zip(self.providers, partitions)):
            if rows is None or rows.num_rows == 0:
                receipts.append(None)
                continue
            request = IngestRequest(
                provider_id=provider.provider_id,
                num_rows=rows.num_rows,
                num_columns=len(rows.schema.column_names),
            )
            self.network.send(request.payload_bytes(), message_class="ingest")
            if self._process_pool is not None:
                self._process_pool.ingest(index, rows)
            receipt = provider.ingest_rows(rows)
            ack = IngestAck(
                provider_id=provider.provider_id,
                delta_watermark=receipt.delta_watermark,
                layout_epoch=receipt.layout_epoch,
                compacted=receipt.compacted,
            )
            self.network.send(ack.payload_bytes(), message_class="ingest")
            receipts.append(receipt)
        return receipts

    def plan_reuse(
        self,
        queries: Sequence[RangeQuery],
        budget: QueryBudget,
        *,
        sampling_rate: float | None = None,
        use_smc: bool | None = None,
    ) -> ReusePlan:
        """Preview which queries of a workload are fully served by the caches.

        Delegates to :class:`~repro.cache.planner.ReusePlanner` with this
        federation's providers and allocation floor.  Never mutates any
        cache; used by the system facade for budget-aware batch admission.
        """
        rate = self.config.sampling.sampling_rate if sampling_rate is None else sampling_rate
        smc = self.config.use_smc_for_result if use_smc is None else use_smc
        planner = ReusePlanner(
            providers=self.providers,
            min_allocation=self.config.sampling.min_allocation,
        )
        return planner.preview(queries, budget, rate, use_smc=smc)

    @staticmethod
    def _query_charge(
        budget: QueryBudget,
        summary_hits: Sequence[bool],
        answer_hits: Sequence[bool],
        summary_released: Sequence[bool] | None = None,
        answer_released: Sequence[bool] | None = None,
    ) -> tuple[float, float]:
        """Actual ``(epsilon, delta)`` cost of one query across the federation.

        Each provider sequentially spends only the phases it released fresh
        (cache hits are post-processing); providers hold disjoint partitions,
        so the end-user charge is the parallel composition — the maximum —
        of the per-provider spends.  With every release fresh this equals
        the full ``(epsilon_total, delta)``, bit-for-bit.

        The ``*_released`` masks (default: everything released) mark which
        phases each provider actually *delivered*: a degraded batch charges
        nothing for a phase that never reached the aggregator, because the
        release was never observed.
        """
        epsilon = 0.0
        delta = 0.0
        count = len(summary_hits)
        if summary_released is None:
            summary_released = [True] * count
        if answer_released is None:
            answer_released = [True] * count
        for summary_hit, answer_hit, summary_rel, answer_rel in zip(
            summary_hits, answer_hits, summary_released, answer_released
        ):
            spent = (
                0.0
                if (summary_hit or not summary_rel)
                else budget.epsilon_allocation
            )
            answered_fresh = answer_rel and not answer_hit
            if answered_fresh:
                spent = spent + budget.epsilon_sampling + budget.epsilon_estimation
            epsilon = max(epsilon, spent)
            delta = max(delta, budget.delta if answered_fresh else 0.0)
        return epsilon, delta

    # -- provider fan-out --------------------------------------------------------

    def _map_indices(
        self, indices: Sequence[int], task: Callable[[int, DataProvider], _T]
    ) -> list[_T]:
        """Apply ``task(index, provider)`` to the given providers, optionally pooled.

        Index order is preserved.  Each provider owns an independent RNG
        derivation tree, so the parallel and sequential fan-outs are
        bit-identical; only wall-clock changes.
        """
        parallelism = self.config.parallelism
        if not parallelism.enabled or len(indices) <= 1:
            return [task(index, self.providers[index]) for index in indices]
        workers = parallelism.resolve_workers(len(indices))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda index: task(index, self.providers[index]), indices)
            )

    def _fanout_resilient(
        self,
        phase: str,
        indices: Sequence[int],
        task: Callable[[int, DataProvider, int], _T],
        failed: dict[int, str],
    ) -> dict[int, _T]:
        """Serial/thread fan-out with scripted-fault handling and retry.

        In-process providers cannot genuinely crash or hang, so every
        provider fault kind fails the attempt *before* the call runs (a
        ``hang_worker`` counts as a simulated timeout).  Without resilience
        a fired fault raises :class:`~repro.errors.InjectedFaultError`;
        with it, failures retry up to ``max_retries`` times and then land
        in ``failed``.

        ``task`` receives the attempt number as its third argument — the
        transports key their scripted wire faults on it — and a
        :class:`~repro.errors.TransportError` it raises is treated exactly
        like a failed provider: retried with backoff, then degraded out.
        Transport faults fire *before* the provider consumes randomness,
        so a retried attempt is bit-identical to a never-faulted call.
        """
        resilience = self.config.resilience
        degrade = resilience.enabled
        max_attempts = 1 + (resilience.max_retries if degrade else 0)
        # The fan-out runs tasks on pool threads, which do not inherit this
        # thread's contextvar — capture the phase span here and parent each
        # per-provider attempt span explicitly.  A failed attempt's span is
        # tagged with the error type, so retries are visible in the trace.
        trace_parent = self._tracer.context() if self._tracer is not None else None

        def traced(index: int, provider: DataProvider, attempt: int):
            if trace_parent is None:
                return task(index, provider, attempt)
            with self._tracer.span(
                f"attempt.{phase}",
                parent=trace_parent,
                provider=provider.provider_id,
                attempt=attempt,
            ):
                return task(index, provider, attempt)

        results: dict[int, _T] = {}
        pending = list(indices)
        attempt = 0
        while pending:
            attempt += 1
            failed_now: dict[int, str] = {}
            runnable: list[int] = []
            for index in pending:
                fault = (
                    self._fault_injector.take_call_fault(phase, index, attempt)
                    if self._fault_injector is not None
                    else None
                )
                if fault is None:
                    runnable.append(index)
                    continue
                if not degrade:
                    raise InjectedFaultError(
                        f"injected {fault.kind} for provider "
                        f"{self.providers[index].provider_id!r} during {phase}"
                    )
                if fault.kind == "hang_worker":
                    self._worker_timeouts += 1
                    failed_now[index] = f"injected {fault.kind} (simulated timeout)"
                else:
                    failed_now[index] = f"injected {fault.kind}"

            def guarded(
                index: int, provider: DataProvider, _attempt: int = attempt
            ) -> tuple[str, object]:
                try:
                    return "ok", traced(index, provider, _attempt)
                except TransportTimeoutError as error:
                    if not degrade:
                        raise
                    return "timeout", str(error)
                except TransportError as error:
                    if not degrade:
                        raise
                    return "transport", str(error)

            for index, (outcome, value) in zip(
                runnable, self._map_indices(runnable, guarded)
            ):
                if outcome == "ok":
                    results[index] = value  # type: ignore[assignment]
                elif outcome == "timeout":
                    self._worker_timeouts += 1
                    failed_now[index] = f"transport timeout: {value}"
                else:
                    failed_now[index] = f"transport failure: {value}"
            pending = sorted(failed_now)
            if not pending:
                break
            if attempt >= max_attempts:
                self._provider_failures += len(pending)
                failed.update(failed_now)
                break
            self._provider_retries += len(pending)
            if resilience.retry_backoff_seconds > 0:
                time.sleep(resilience.retry_backoff_seconds * (2 ** (attempt - 1)))
        return results

    def _check_survivors(
        self, survivors: dict[int, object], failed: dict[int, str], phase: str
    ) -> None:
        """Fail the batch when too few providers made it through a phase."""
        resilience = self.config.resilience
        minimum = (
            max(1, resilience.min_providers)
            if resilience.enabled
            else len(self.providers)
        )
        if len(survivors) >= minimum:
            return
        details = "; ".join(
            f"{self.providers[index].provider_id!r}: {failed[index]}"
            for index in sorted(failed)
        )
        raise ProtocolError(
            f"only {len(survivors)} of {len(self.providers)} providers survived "
            f"the {phase} phase (minimum {minimum}): {details}"
        )

    def _update_quarantine(self, failed: dict[int, str]) -> None:
        """Advance the consecutive-failure counters after a finished batch."""
        resilience = self.config.resilience
        for index in range(len(self.providers)):
            if index in self._quarantined:
                continue
            if index in failed:
                count = self._consecutive_failures.get(index, 0) + 1
                self._consecutive_failures[index] = count
                if (
                    resilience.quarantine_after is not None
                    and count >= resilience.quarantine_after
                ):
                    self._quarantined[index] = (
                        f"failed {count} consecutive batches"
                    )
            else:
                self._consecutive_failures[index] = 0
        if failed:
            self._degraded_batches += 1

    # -- protocol phases ---------------------------------------------------------

    def _send(
        self,
        payload_bytes: int,
        accounting: _QueryAccounting,
        *,
        copies: int = 1,
    ) -> None:
        cost = self.network.send(payload_bytes, copies=copies)
        accounting.messages += copies
        accounting.bytes_sent += copies * payload_bytes
        accounting.simulated_seconds += cost

    def _send_uniform(
        self,
        payload_bytes: int,
        accounting: Sequence[_QueryAccounting],
        *,
        copies_per_query: int = 1,
    ) -> None:
        """Send one same-size message per query (× ``copies_per_query``).

        One bulk :meth:`SimulatedNetwork.send` charges the network (its cost
        model is linear in copies, so the stats equal per-message sends), and
        each query's accounting receives its exact per-message share.
        """
        num_queries = len(accounting)
        self.network.send(payload_bytes, copies=copies_per_query * num_queries)
        cost = copies_per_query * self.network.config.transfer_cost(payload_bytes)
        payload = copies_per_query * payload_bytes
        for entry in accounting:
            entry.messages += copies_per_query
            entry.bytes_sent += payload
            entry.simulated_seconds += cost

    def _collect_summaries(
        self,
        requests: Sequence[QueryRequest],
        budget: QueryBudget,
        accounting: Sequence[_QueryAccounting],
        failed: dict[int, str],
    ) -> tuple[dict[int, list[SummaryMessage]], dict[int, list[bool]]]:
        """Summary lists plus cache-hit flags, keyed by provider index.

        Both dicts hold the providers that delivered the phase; providers
        that failed land in ``failed`` instead (resilience permitting).
        Inner lists are aligned with the request order; the flags mark
        summaries the provider re-served from its release cache.
        """
        active = [
            index for index in range(len(self.providers)) if index not in failed
        ]
        for index, request in enumerate(requests):
            self._send(request.payload_bytes(), accounting[index], copies=len(active))

        def collect(
            index: int, _provider: DataProvider, attempt: int = 1
        ) -> tuple[list[SummaryMessage], list[bool]]:
            return self._transport.summary_batch(
                index, requests, budget.epsilon_allocation, attempt=attempt
            )

        if self._use_process_backend:
            outcomes, pool_failures = self._ensure_process_pool().summary_batch(
                requests,
                budget.epsilon_allocation,
                skip=frozenset(failed),
                injector=self._fault_injector,
                resilience=self.config.resilience,
            )
            failed.update(pool_failures)
        else:
            outcomes = self._fanout_resilient("summary", active, collect, failed)
        summaries = {index: messages for index, (messages, _) in outcomes.items()}
        reuse_flags = {index: reuse for index, (_, reuse) in outcomes.items()}
        for index in sorted(summaries):
            # Summaries have a data-independent constant size, so one bulk
            # send per responding provider covers the whole workload.
            if summaries[index]:
                self._send_uniform(summaries[index][0].payload_bytes(), accounting)
        return summaries, reuse_flags

    def _allocate(
        self,
        requests: Sequence[QueryRequest],
        summaries: dict[int, Sequence[SummaryMessage]],
        rate: float,
        accounting: Sequence[_QueryAccounting],
    ) -> dict[int, list[AllocationMessage]]:
        """Allocation lists keyed by provider index, aligned with requests.

        Allocation is solved over the providers that delivered summaries —
        a degraded batch re-spreads the sampling budget across the
        survivors, exactly as the protocol would with a smaller federation.
        """
        survivors = sorted(summaries)
        per_provider: dict[int, list[AllocationMessage]] = {
            index: [] for index in survivors
        }
        for index, request in enumerate(requests):
            problems = [
                AllocationProblem(
                    provider_id=summaries[provider_index][index].provider_id,
                    noisy_cluster_count=summaries[provider_index][index].noisy_cluster_count,
                    noisy_avg_proportion=summaries[provider_index][index].noisy_avg_proportion,
                )
                for provider_index in survivors
            ]
            results = solve_allocation(
                problems, rate, min_allocation=self.config.sampling.min_allocation
            )
            for provider_index, result in zip(survivors, results):
                per_provider[provider_index].append(
                    AllocationMessage(
                        query_id=request.query_id,
                        provider_id=result.provider_id,
                        sample_size=result.sample_size,
                    )
                )
        if survivors and per_provider[survivors[0]]:
            # Allocations have a constant size: one bulk send covers the
            # per-query messages to every surviving provider.
            self._send_uniform(
                per_provider[survivors[0]][0].payload_bytes(),
                accounting,
                copies_per_query=len(survivors),
            )
        return per_provider

    def _collect_answers(
        self,
        allocations: dict[int, Sequence[AllocationMessage]],
        budget: QueryBudget,
        use_smc: bool,
        accounting: Sequence[_QueryAccounting],
        failed: dict[int, str],
    ) -> tuple[dict[int, list[LocalAnswer]], dict[int, list[bool]]]:
        """Answer lists plus cache-hit flags, keyed by provider index.

        Same contract as :meth:`_collect_summaries`: only providers that
        delivered the phase appear; new failures land in ``failed``.
        """
        provider_ids = {provider.provider_id for provider in self.providers}
        for provider_allocations in allocations.values():
            for message in provider_allocations:
                if message.provider_id not in provider_ids:
                    raise ProtocolError(f"unknown provider {message.provider_id!r}")

        active = sorted(allocations)

        def collect(
            index: int, _provider: DataProvider, attempt: int = 1
        ) -> tuple[list[LocalAnswer], list[bool]]:
            return self._transport.answer_batch(
                index, allocations[index], budget, use_smc, attempt=attempt
            )

        if self._use_process_backend:
            full = [
                list(allocations.get(index, []))
                for index in range(len(self.providers))
            ]
            skip = frozenset(
                index
                for index in range(len(self.providers))
                if index not in allocations
            )
            outcomes, pool_failures = self._ensure_process_pool().answer_batch(
                full,
                budget,
                use_smc,
                skip=skip,
                injector=self._fault_injector,
                resilience=self.config.resilience,
                trace_ctx=self._tracer.context() if self._tracer is not None else None,
            )
            failed.update(pool_failures)
        else:
            outcomes = self._fanout_resilient("answer", active, collect, failed)
        answers = {index: local_answers for index, (local_answers, _) in outcomes.items()}
        reuse_flags = {index: reuse for index, (_, reuse) in outcomes.items()}
        for index in sorted(answers):
            # Estimates have a data-independent constant size as well.
            if answers[index]:
                self._send_uniform(
                    answers[index][0].message.payload_bytes(), accounting
                )
        return answers, reuse_flags

    def _combine(
        self,
        answers: Sequence[LocalAnswer],
        budget: QueryBudget,
        use_smc: bool,
        accounting: _QueryAccounting,
    ) -> tuple[float, float]:
        messages: list[EstimateMessage] = [answer.message for answer in answers]
        if not use_smc:
            total = sum(message.value for message in messages)
            noise = sum(answer.report.local_noise for answer in answers)
            return float(total), float(noise)

        smc = SMCSimulator(
            config=self.config.smc,
            num_parties=max(2, len(answers)),
            rng=derive_rng(self._rng, "smc"),
        )
        shared_estimates = [smc.share(message.value) for message in messages]
        shared_sensitivities = [smc.share(message.smooth_sensitivity) for message in messages]
        total = smc.reconstruct(smc.secure_sum(shared_estimates))
        max_sensitivity = smc.secure_max(shared_sensitivities)
        mechanism = LaplaceMechanism(
            epsilon=budget.epsilon_estimation,
            sensitivity=2.0 * max_sensitivity,
            rng=derive_rng(self._rng, "smc-noise"),
        )
        noise = float(mechanism.sample_noise())
        # Charge the SMC exchange to the simulated network so the trace shows it.
        self._send(smc.cost.bytes_exchanged, accounting)
        return float(total) + noise, noise
