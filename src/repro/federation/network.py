"""Simulated network with message/byte accounting and a latency model.

The simulator does not actually move bytes; it records every send and charges
``latency + bytes / bandwidth`` seconds of *simulated* time, which the
execution trace reports separately from wall-clock compute time.  This keeps
the communication-volume effects visible (Figure 1 is entirely about them)
while the whole federation runs in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import NetworkConfig
from ..errors import FederationError

__all__ = ["NetworkStats", "SimulatedNetwork"]


@dataclass
class NetworkStats:
    """Counters accumulated by a :class:`SimulatedNetwork`."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Return the element-wise sum of two stats objects."""
        return NetworkStats(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            simulated_seconds=self.simulated_seconds + other.simulated_seconds,
        )


@dataclass
class SimulatedNetwork:
    """Charges a latency/bandwidth cost for every message sent through it."""

    config: NetworkConfig = field(default_factory=NetworkConfig)
    stats: NetworkStats = field(default_factory=NetworkStats)

    def send(self, payload_bytes: int, *, copies: int = 1) -> float:
        """Record sending a payload (optionally to several recipients).

        Returns the simulated transfer time in seconds for the whole send.
        """
        if payload_bytes < 0:
            raise FederationError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if copies < 1:
            raise FederationError(f"copies must be >= 1, got {copies}")
        cost = copies * self.config.transfer_cost(payload_bytes)
        self.stats.messages += copies
        self.stats.bytes_sent += copies * payload_bytes
        self.stats.simulated_seconds += cost
        return cost

    def reset(self) -> NetworkStats:
        """Return the accumulated stats and start a fresh accumulation."""
        stats = self.stats
        self.stats = NetworkStats()
        return stats

    def snapshot(self) -> NetworkStats:
        """Return a copy of the current counters without resetting them."""
        return NetworkStats(
            messages=self.stats.messages,
            bytes_sent=self.stats.bytes_sent,
            simulated_seconds=self.stats.simulated_seconds,
        )
