"""Simulated network with message/byte accounting and a latency model.

The simulator does not actually move bytes; it records every send and charges
``latency + bytes / bandwidth`` seconds of *simulated* time, which the
execution trace reports separately from wall-clock compute time.  This keeps
the communication-volume effects visible (Figure 1 is entirely about them)
while the whole federation runs in one process.

Traffic is accounted per **message class**: the query protocol's messages
(``"query"`` — requests, summaries, allocations, estimates, SMC exchanges)
and the streaming-ingestion path's messages (``"ingest"`` — appended row
batches and their acks) are counted separately, so the paper's
communication-volume comparisons stay meaningful when ingest runs alongside
query traffic.  The top-level counters remain the all-traffic totals.

The network is also a fault-injection point: when the owning aggregator
installs a :class:`~repro.testing.faults.FaultInjector` (see
:attr:`~repro.config.ParallelismConfig.injected_faults`), a send may be hit
by a ``delay_message`` fault (extra simulated latency) or a ``drop_message``
fault — the lost copy is charged, counted in ``messages_dropped``, and
retransmitted once (counted in ``messages_retried``).  Drops and retries
keep the totals honest: a dropped-and-resent message costs two sends on the
wire, and the per-class split still sums back to the totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import NetworkConfig
from ..errors import FederationError

__all__ = ["NetworkStats", "SimulatedNetwork", "MESSAGE_CLASSES"]

MESSAGE_CLASSES = ("query", "ingest")
"""Traffic classes the simulated network accounts separately."""


@dataclass
class NetworkStats:
    """Counters accumulated by a :class:`SimulatedNetwork`.

    ``messages`` / ``bytes_sent`` / ``simulated_seconds`` are all-traffic
    totals; the ``ingest_*`` fields hold the ingest class's share, and the
    ``query_*`` properties derive the query-protocol share as the
    difference, so the split always sums back to the totals.

    ``messages_dropped`` / ``messages_retried`` count injected-fault losses
    and their retransmissions (zero outside chaos runs).  A dropped copy
    and its retry are *both* included in ``messages`` — they both crossed
    the wire — so totals stay consistent with the per-send costs.

    The serializing transports (:mod:`repro.federation.transport`) account
    their *real* framed wire traffic with this same class: there,
    ``messages``/``bytes_sent`` count frames and framed bytes, and
    ``frames_duplicated`` counts reply frames delivered more than once and
    discarded by the receiver's sequence check.
    """

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0
    messages_dropped: int = 0
    messages_retried: int = 0
    frames_duplicated: int = 0
    ingest_messages: int = 0
    ingest_bytes_sent: int = 0
    ingest_simulated_seconds: float = 0.0
    ingest_messages_dropped: int = 0
    ingest_messages_retried: int = 0

    @property
    def query_messages(self) -> int:
        """Messages carried for the query protocol (total minus ingest)."""
        return self.messages - self.ingest_messages

    @property
    def query_bytes_sent(self) -> int:
        """Bytes carried for the query protocol (total minus ingest)."""
        return self.bytes_sent - self.ingest_bytes_sent

    @property
    def query_simulated_seconds(self) -> float:
        """Simulated seconds spent on query-protocol traffic."""
        return self.simulated_seconds - self.ingest_simulated_seconds

    @property
    def query_messages_dropped(self) -> int:
        """Query-protocol messages lost to injected faults (total minus ingest)."""
        return self.messages_dropped - self.ingest_messages_dropped

    @property
    def query_messages_retried(self) -> int:
        """Query-protocol retransmissions after injected drops."""
        return self.messages_retried - self.ingest_messages_retried

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Return the element-wise sum of two stats objects."""
        return NetworkStats(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            simulated_seconds=self.simulated_seconds + other.simulated_seconds,
            messages_dropped=self.messages_dropped + other.messages_dropped,
            messages_retried=self.messages_retried + other.messages_retried,
            frames_duplicated=self.frames_duplicated + other.frames_duplicated,
            ingest_messages=self.ingest_messages + other.ingest_messages,
            ingest_bytes_sent=self.ingest_bytes_sent + other.ingest_bytes_sent,
            ingest_simulated_seconds=self.ingest_simulated_seconds
            + other.ingest_simulated_seconds,
            ingest_messages_dropped=self.ingest_messages_dropped
            + other.ingest_messages_dropped,
            ingest_messages_retried=self.ingest_messages_retried
            + other.ingest_messages_retried,
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (for JSON benchmark records), split included."""
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "simulated_seconds": self.simulated_seconds,
            "messages_dropped": self.messages_dropped,
            "messages_retried": self.messages_retried,
            "frames_duplicated": self.frames_duplicated,
            "query_messages": self.query_messages,
            "query_bytes_sent": self.query_bytes_sent,
            "query_simulated_seconds": self.query_simulated_seconds,
            "query_messages_dropped": self.query_messages_dropped,
            "query_messages_retried": self.query_messages_retried,
            "ingest_messages": self.ingest_messages,
            "ingest_bytes_sent": self.ingest_bytes_sent,
            "ingest_simulated_seconds": self.ingest_simulated_seconds,
            "ingest_messages_dropped": self.ingest_messages_dropped,
            "ingest_messages_retried": self.ingest_messages_retried,
        }


@dataclass
class SimulatedNetwork:
    """Charges a latency/bandwidth cost for every message sent through it.

    ``fault_injector`` is installed by an aggregator whose
    :class:`~repro.config.ParallelismConfig` carries a fault schedule;
    ``None`` (the default) leaves every send untouched.
    """

    config: NetworkConfig = field(default_factory=NetworkConfig)
    stats: NetworkStats = field(default_factory=NetworkStats)
    fault_injector: object | None = field(default=None, repr=False, compare=False)

    def send(
        self, payload_bytes: int, *, copies: int = 1, message_class: str = "query"
    ) -> float:
        """Record sending a payload (optionally to several recipients).

        ``message_class`` selects the accounting bucket (``"query"`` or
        ``"ingest"``); totals always accumulate.  Returns the simulated
        transfer time in seconds for the whole send, including any
        injected delay or drop-and-retransmit penalty.
        """
        if payload_bytes < 0:
            raise FederationError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if copies < 1:
            raise FederationError(f"copies must be >= 1, got {copies}")
        if message_class not in MESSAGE_CLASSES:
            raise FederationError(
                f"message_class must be one of {MESSAGE_CLASSES}, got {message_class!r}"
            )
        dropped = retried = 0
        extra_cost = 0.0
        if self.fault_injector is not None:
            fault = self.fault_injector.take_message_fault(message_class)
            if fault is not None and fault.kind == "delay_message":
                extra_cost = fault.delay_seconds
            elif fault is not None and fault.kind == "drop_message":
                # One copy is lost in flight and retransmitted: the lost
                # copy already consumed the wire, the retry consumes it
                # again, so both land in the totals.
                dropped = retried = 1
                extra_cost = self.config.transfer_cost(payload_bytes)
        cost = copies * self.config.transfer_cost(payload_bytes) + extra_cost
        self.stats.messages += copies + retried
        self.stats.bytes_sent += (copies + retried) * payload_bytes
        self.stats.simulated_seconds += cost
        self.stats.messages_dropped += dropped
        self.stats.messages_retried += retried
        if message_class == "ingest":
            self.stats.ingest_messages += copies + retried
            self.stats.ingest_bytes_sent += (copies + retried) * payload_bytes
            self.stats.ingest_simulated_seconds += cost
            self.stats.ingest_messages_dropped += dropped
            self.stats.ingest_messages_retried += retried
        return cost

    def reset(self) -> NetworkStats:
        """Return the accumulated stats and start a fresh accumulation."""
        stats = self.stats
        self.stats = NetworkStats()
        return stats

    def snapshot(self) -> NetworkStats:
        """Return a copy of the current counters without resetting them."""
        return NetworkStats(
            messages=self.stats.messages,
            bytes_sent=self.stats.bytes_sent,
            simulated_seconds=self.stats.simulated_seconds,
            messages_dropped=self.stats.messages_dropped,
            messages_retried=self.stats.messages_retried,
            frames_duplicated=self.stats.frames_duplicated,
            ingest_messages=self.stats.ingest_messages,
            ingest_bytes_sent=self.stats.ingest_bytes_sent,
            ingest_simulated_seconds=self.stats.ingest_simulated_seconds,
            ingest_messages_dropped=self.stats.ingest_messages_dropped,
            ingest_messages_retried=self.stats.ingest_messages_retried,
        )
