"""Sharded provider: one logical provider, its table split across K workers.

A :class:`ShardedProvider` is a drop-in :class:`~repro.federation.provider.DataProvider`
whose *data passes* — the metadata scan that materialises a query's covering
set and the ``Q(C)`` evaluation over the selected clusters — run per shard
over contiguous slices of the clustered layout.  Everything that carries DP
semantics stays on the merger: the noise draws, the Exponential-Mechanism
selection, the release caches, the delta store, and the per-query session
RNG streams (keyed by ``seed_material`` exactly as in the base class).
Splitting the *where the data lives* axis while keeping the *where the
randomness lives* axis intact is what makes the merged answer bit-for-bit
the unsharded answer:

- Shard boundaries are chosen by
  :func:`~repro.federation.partitioning.work_balanced_chunks` over the
  per-cluster row counts, so shards are contiguous cluster ranges in
  layout order.  Concatenating per-shard results in shard order therefore
  reproduces the global layout order exactly.
- Cluster metadata (zone maps, per-cluster proportions) is local to each
  cluster, so a shard's metadata pass computes the *same values* the
  global pass would for the clusters it owns — element-wise identical
  arrays, not merely close.  The merger concatenates the arrays and takes
  one sum, never partial sums, so float non-associativity cannot creep in.
- ``Q(C)`` values are exact integer sums per cluster; concatenation in
  layout order makes the per-query value vectors identical to the
  unsharded ones.

Shards are rebuilt lazily whenever the provider's layout epoch moves
(compaction, :meth:`~repro.federation.provider.DataProvider.rebuild_layout`),
so ingest and re-clustering keep working unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ProtocolError
from ..obs.trace import ambient_span
from ..query.batch import QueryBatch
from ..storage.cluster import Cluster
from ..storage.clustered_table import ClusteredTable
from ..storage.metadata import build_metadata
from .partitioning import work_balanced_chunks
from .provider import DataProvider

__all__ = ["ShardedProvider"]


@dataclass
class _Shard:
    """One contiguous cluster range of the provider's layout."""

    start: int
    clustered: ClusteredTable
    metadata: object

    @property
    def num_clusters(self) -> int:
        return self.clustered.num_clusters


@dataclass
class ShardedProvider(DataProvider):
    """A provider whose data passes fan out over ``shard_workers`` shards.

    Behaviourally identical to :class:`~repro.federation.provider.DataProvider`
    — same messages, same noise, same caches, same epsilon accounting —
    with the two table-scanning passes split across contiguous shards of
    the clustered layout (see the module docstring for the determinism
    argument).  ``shard_workers`` is the *target* shard count; the
    work-balanced packing may produce fewer shards for small tables.
    """

    shard_workers: int = 1
    _shards: list[_Shard] | None = field(default=None, init=False, repr=False)
    _shard_epoch: int = field(default=-1, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.shard_workers < 1:
            raise ProtocolError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        super().__post_init__()

    @property
    def shard_count(self) -> int:
        """Number of shards the current layout is split into."""
        return len(self._ensure_shards())

    def _ensure_shards(self) -> list[_Shard]:
        if self._shards is not None and self._shard_epoch == self._layout_epoch:
            return self._shards
        clusters = self.clustered.clusters
        row_counts = [float(cluster.num_rows) for cluster in clusters]
        budget = max(1.0, math.ceil(sum(row_counts) / self.shard_workers))
        chunks = work_balanced_chunks(list(range(len(clusters))), row_counts, budget)
        shards: list[_Shard] = []
        start = 0
        for chunk in chunks:
            members = clusters[start : start + len(chunk)]
            local = ClusteredTable(
                clusters=tuple(
                    Cluster(
                        cluster_id=position,
                        rows=member.rows,
                        nominal_size=self.cluster_size,
                    )
                    for position, member in enumerate(members)
                ),
                cluster_size=self.cluster_size,
            )
            shards.append(
                _Shard(start=start, clustered=local, metadata=build_metadata(local))
            )
            start += len(chunk)
        self._shards = shards
        self._shard_epoch = self._layout_epoch
        return shards

    # -- sharded data passes ---------------------------------------------------

    def _materialize_sessions(self, sessions) -> None:
        lazy = [session for session in sessions if session.covering_positions is None]
        if not lazy:
            return
        shards = self._ensure_shards()
        if len(shards) == 1:
            super()._materialize_sessions(sessions)
            return
        ranges_list = [session.query.range_tuples() for session in lazy]
        per_shard_positions = []
        per_shard_proportions = []
        for shard_index, shard in enumerate(shards):
            with ambient_span(
                "shard.metadata_pass",
                provider=self.provider_id,
                shard=shard_index,
                queries=len(lazy),
            ):
                positions_list = shard.metadata.covering_positions_batch(ranges_list)
                per_shard_positions.append(positions_list)
                per_shard_proportions.append(
                    shard.metadata.proportions_at_positions_batch(
                        positions_list, ranges_list
                    )
                )
        for query_index, session in enumerate(lazy):
            # Shards are contiguous ranges in layout order, so offsetting each
            # shard's (ascending) local positions and concatenating in shard
            # order reproduces the global ascending covering set exactly.
            positions = np.concatenate(
                [
                    per_shard_positions[shard_index][query_index] + shard.start
                    for shard_index, shard in enumerate(shards)
                ]
            )
            proportions = np.concatenate(
                [
                    per_shard_proportions[shard_index][query_index]
                    for shard_index in range(len(shards))
                ]
            )
            session.covering_positions = positions
            session.proportions = proportions
            session.proportions_sum = (
                float(proportions.sum()) if positions.size else 0.0
            )

    def _needed_values(self, plans) -> list[np.ndarray]:
        shards = self._ensure_shards()
        if len(shards) == 1:
            return super()._needed_values(plans)
        batch = QueryBatch(tuple(plan.session.query for plan in plans))
        positions_per_query = [
            plan.needed_positions if plan.exact else plan.unique_positions
            for plan in plans
        ]
        boundaries = [shard.start for shard in shards] + [self.clustered.num_clusters]
        gathered: list[list[np.ndarray]] = [[] for _ in plans]
        for shard_index, shard in enumerate(shards):
            local_positions = []
            for positions in positions_per_query:
                low = np.searchsorted(positions, boundaries[shard_index], side="left")
                high = np.searchsorted(
                    positions, boundaries[shard_index + 1], side="left"
                )
                local_positions.append(positions[low:high] - shard.start)
            if not any(positions.size for positions in local_positions):
                continue
            with ambient_span(
                "shard.scan",
                provider=self.provider_id,
                shard=shard_index,
                clusters=int(sum(p.size for p in local_positions)),
            ):
                shard_values = shard.clustered.layout().query_cluster_values(
                    batch, local_positions, execution=self.execution_config
                )
            for query_index, values in enumerate(shard_values):
                if values.size:
                    gathered[query_index].append(values)
        values_list = [
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=np.int64)
            for parts in gathered
        ]
        values: list[np.ndarray] = []
        for plan, unique_values in zip(plans, values_list):
            if plan.exact or plan.needed_positions.size == 0:
                values.append(unique_values)
                continue
            indices = np.searchsorted(plan.unique_positions, plan.needed_positions)
            values.append(unique_values[indices])
        return values
