"""Pluggable transports: the provider boundary as a (potential) wire boundary.

The federated protocol is message-shaped — a query request, two noisy
scalars, one integer allocation, one noisy estimate per provider — so the
aggregator/provider boundary can become a real wire without touching DP
semantics.  This module supplies three interchangeable transports:

``InProcessTransport``
    Today's direct method calls.  The default; zero overhead, no wire.

``LoopbackTransport``
    Every protocol message makes the full serialize → frame → deframe →
    deserialize round trip in-process, with no sockets.  This is the
    cheapest way to prove the wire codec is lossless: a federation on the
    loopback transport must produce bit-identical answers to the in-process
    one, or the codec dropped information.

``SocketTransport``
    Asyncio TCP on localhost with length-prefixed framing.  One background
    server thread hosts every provider; the aggregator keeps one blocking
    client connection per provider.  Call timeouts come from
    :attr:`~repro.config.ResilienceConfig.provider_timeout_seconds`, and a
    timeout or lost connection surfaces as
    :class:`~repro.errors.TransportError` /
    :class:`~repro.errors.TransportTimeoutError`, which the aggregator's
    retry/degrade/quarantine path treats exactly like a failed provider.

Unlike the :class:`~repro.federation.network.SimulatedNetwork` — which
models the *paper's* cost accounting and stays authoritative for traces —
the serializing transports account their **real** framed traffic in their
own :class:`~repro.federation.network.NetworkStats`: ``messages`` counts
frames, ``bytes_sent`` counts framed bytes, and ``frames_duplicated``
counts reply frames delivered more than once and discarded by the
receiver's sequence check.

**Determinism.**  The wire codec round-trips every value exactly: integers
stay integers, floats serialise via ``repr`` (which round-trips IEEE-754
doubles bit-for-bit), tuples and numpy arrays are tagged so their types
survive.  Provider-side randomness is keyed by ``seed_material`` and
request order, both of which the codec preserves — so loopback, socket,
and in-process federations are bit-identical under a fixed seed.

**Fault points.**  When the owning aggregator installs a
:class:`~repro.testing.faults.FaultInjector`, the serializing transports
consult it once per phase call: ``drop_frame`` loses the request frame
before the provider ever runs, ``disconnect`` tears the connection down
mid-phase, ``delay_frame`` stalls the call for
:attr:`~repro.testing.faults.FaultSpec.delay_seconds`, and
``duplicate_frame`` delivers the reply twice (the duplicate is discarded
by sequence number and counted).  Drops and disconnects raise
:class:`~repro.errors.TransportError` *before* the provider consumes any
randomness, so a retried attempt is bit-identical to a never-faulted one.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import json
import socket as socket_module
import struct
import threading
import time
from contextlib import nullcontext
from typing import Any, Mapping, Sequence

import numpy as np

from .. import errors as _errors
from ..core.accounting import QueryBudget
from ..core.result import ProviderReport
from ..errors import ReproError, TransportError, TransportTimeoutError
from ..query.model import Aggregation, Interval, RangeQuery
from .messages import (
    AllocationMessage,
    EstimateMessage,
    IngestAck,
    IngestRequest,
    QueryRequest,
    SummaryMessage,
)
from .network import NetworkStats
from .provider import DataProvider, LocalAnswer

__all__ = [
    "Transport",
    "InProcessTransport",
    "LoopbackTransport",
    "SocketTransport",
    "create_transport",
    "serialize",
    "deserialize",
    "encode_frame",
    "FrameDecoder",
    "WIRE_MAGIC",
    "DEFAULT_MAX_FRAME_BYTES",
]


# -- wire codec -----------------------------------------------------------------

_TAG_DATACLASS = "__dc__"
_TAG_FIELDS = "__f__"
_TAG_TUPLE = "__tu__"
_TAG_NDARRAY = "__nd__"
_TAG_ENUM = "__en__"
_RESERVED_KEYS = frozenset({_TAG_DATACLASS, _TAG_FIELDS, _TAG_TUPLE, _TAG_NDARRAY, _TAG_ENUM})

_WIRE_DATACLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        QueryRequest,
        SummaryMessage,
        AllocationMessage,
        EstimateMessage,
        IngestRequest,
        IngestAck,
        Interval,
        RangeQuery,
        QueryBudget,
        ProviderReport,
        LocalAnswer,
    )
}
"""Types the codec reconstructs by name: every protocol message plus the
value types they carry (queries, budgets, reports, local answers)."""


def _to_wire(value: Any) -> Any:
    """Lower a protocol value to JSON-representable form, losslessly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Aggregation):
        return {_TAG_ENUM: value.value}
    if isinstance(value, np.ndarray):
        data = base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii")
        return {_TAG_NDARRAY: [str(value.dtype), list(value.shape), data]}
    cls = type(value)
    if cls.__name__ in _WIRE_DATACLASSES and cls is _WIRE_DATACLASSES[cls.__name__]:
        fields = {
            field.name: _to_wire(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {_TAG_DATACLASS: cls.__name__, _TAG_FIELDS: fields}
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [_to_wire(item) for item in value]}
    if isinstance(value, list):
        return [_to_wire(item) for item in value]
    if isinstance(value, Mapping):
        encoded: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str) or key in _RESERVED_KEYS:
                raise TransportError(
                    f"cannot serialise mapping key {key!r}: keys must be "
                    f"non-reserved strings"
                )
            encoded[key] = _to_wire(item)
        return encoded
    raise TransportError(f"cannot serialise {cls.__name__!r} for the wire")


def _from_wire(value: Any) -> Any:
    """Inverse of :func:`_to_wire`."""
    if isinstance(value, list):
        return [_from_wire(item) for item in value]
    if not isinstance(value, dict):
        return value
    if _TAG_ENUM in value:
        return Aggregation(value[_TAG_ENUM])
    if _TAG_TUPLE in value:
        return tuple(_from_wire(item) for item in value[_TAG_TUPLE])
    if _TAG_NDARRAY in value:
        dtype, shape, data = value[_TAG_NDARRAY]
        array = np.frombuffer(base64.b64decode(data), dtype=np.dtype(dtype))
        return array.reshape(tuple(shape)).copy()
    if _TAG_DATACLASS in value:
        name = value[_TAG_DATACLASS]
        cls = _WIRE_DATACLASSES.get(name)
        if cls is None:
            raise TransportError(f"unknown wire type {name!r}")
        fields = {key: _from_wire(item) for key, item in value[_TAG_FIELDS].items()}
        return cls(**fields)
    return {key: _from_wire(item) for key, item in value.items()}


def serialize(value: Any) -> bytes:
    """Encode a protocol value (message, batch, envelope) to wire bytes."""
    return json.dumps(_to_wire(value), separators=(",", ":")).encode("utf-8")


def deserialize(data: bytes) -> Any:
    """Decode wire bytes back to the original protocol value.

    Raises :class:`~repro.errors.TransportError` on malformed payloads.
    """
    try:
        return _from_wire(json.loads(data.decode("utf-8")))
    except (ValueError, TypeError, KeyError) as error:
        raise TransportError(f"malformed wire payload: {error}") from error


# -- framing --------------------------------------------------------------------

WIRE_MAGIC = b"RAQP"
"""Frame preamble; a stream that does not start with it is garbage."""

DEFAULT_MAX_FRAME_BYTES = 8 * 2**20
"""Default per-frame ceiling (8 MiB); protocol messages are tiny."""

_FRAME_HEADER = struct.Struct("!4sI")


def encode_frame(payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Wrap a payload in the length-prefixed frame format."""
    if len(payload) > max_frame_bytes:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte ceiling"
        )
    return _FRAME_HEADER.pack(WIRE_MAGIC, len(payload)) + payload


class FrameDecoder:
    """Incremental decoder for length-prefixed frames.

    Feed arbitrary byte chunks (including partial frames — common on TCP);
    complete frames come back in order, partial input stays buffered for
    the next :meth:`feed`.  A bad magic or an oversized length raises a
    typed :class:`~repro.errors.TransportError` immediately — a framer
    must never hang on garbage, and never allocate unbounded buffers for a
    hostile length prefix.  After an error the decoder is poisoned: the
    stream has lost sync and must be torn down.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._corrupt: TransportError | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Consume a chunk and return every frame it completed (maybe none)."""
        if self._corrupt is not None:
            raise self._corrupt
        self._buffer.extend(data)
        frames: list[bytes] = []
        while len(self._buffer) >= _FRAME_HEADER.size:
            magic, length = _FRAME_HEADER.unpack_from(self._buffer)
            if magic != WIRE_MAGIC:
                self._corrupt = TransportError(
                    f"bad frame magic {bytes(magic)!r}: stream is corrupt or "
                    f"not a transport stream"
                )
                raise self._corrupt
            if length > self.max_frame_bytes:
                self._corrupt = TransportError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte ceiling"
                )
                raise self._corrupt
            if len(self._buffer) < _FRAME_HEADER.size + length:
                break
            start = _FRAME_HEADER.size
            frames.append(bytes(self._buffer[start : start + length]))
            del self._buffer[: start + length]
        return frames


# -- transports -----------------------------------------------------------------


def _execute_op(provider: DataProvider, op: str, payload: dict[str, Any]) -> Any:
    """Run one protocol op against a provider (the server side of the wire)."""
    if op == "summary":
        reuse: list[bool] = []
        messages = provider.prepare_summary_batch(
            list(payload["requests"]), payload["epsilon"], reuse_out=reuse
        )
        return {"messages": messages, "reuse": reuse}
    if op == "answer":
        reuse = []
        answers = provider.answer_batch(
            list(payload["allocations"]),
            payload["budget"],
            use_smc=payload["use_smc"],
            reuse_out=reuse,
        )
        return {"answers": answers, "reuse": reuse}
    if op == "forget":
        provider.forget_batch(list(payload["query_ids"]))
        return True
    if op == "ping":
        return "pong"
    raise TransportError(f"unknown transport op {op!r}")


class Transport:
    """Carries the per-provider protocol phases of one federation.

    Subclasses implement :meth:`summary_batch`, :meth:`answer_batch`, and
    :meth:`forget_batch`; the aggregator calls them instead of touching the
    providers directly, so swapping the transport never changes protocol
    logic.  ``stats`` accounts the transport's real framed traffic (all
    zeros for the in-process transport, which has no wire); an installed
    ``fault_injector`` supplies scripted transport faults for chaos runs.
    """

    kind = "abstract"

    def __init__(
        self,
        providers: Sequence[DataProvider],
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        tracer: Any | None = None,
    ) -> None:
        self.providers = list(providers)
        self.max_frame_bytes = max_frame_bytes
        self.stats = NetworkStats()
        self.fault_injector: Any | None = None
        self.tracer = tracer
        self.closed = False
        self._stats_lock = threading.Lock()

    # Phase calls ---------------------------------------------------------------

    def summary_batch(
        self,
        index: int,
        requests: Sequence[QueryRequest],
        epsilon_allocation: float,
        *,
        attempt: int = 1,
    ) -> tuple[list[SummaryMessage], list[bool]]:
        """Run the summary phase on provider ``index``; returns (messages, reuse)."""
        raise NotImplementedError

    def answer_batch(
        self,
        index: int,
        allocations: Sequence[AllocationMessage],
        budget: QueryBudget,
        use_smc: bool,
        *,
        attempt: int = 1,
    ) -> tuple[list[LocalAnswer], list[bool]]:
        """Run the answer phase on provider ``index``; returns (answers, reuse)."""
        raise NotImplementedError

    def forget_batch(self, index: int, query_ids: Sequence[int]) -> None:
        """Release provider ``index``'s sessions for the given query ids."""
        raise NotImplementedError

    # Lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release transport resources (idempotent).

        Closing is final for this instance; the aggregator checks ``closed``
        and builds a fresh transport when a torn-down one would otherwise be
        reused (a failed batch closes the aggregator to reclaim resources,
        and the dead wire must not wedge every later batch).
        """
        self.closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot_stats(self) -> NetworkStats:
        """A copy of the real-wire counters accumulated so far."""
        with self._stats_lock:
            return NetworkStats(**dataclasses.asdict(self.stats))

    # Shared helpers ------------------------------------------------------------

    def _count_frame(self, num_bytes: int) -> None:
        with self._stats_lock:
            self.stats.messages += 1
            self.stats.bytes_sent += num_bytes

    def _take_fault(self, phase: str | None, index: int, attempt: int):
        """Consume a scripted transport fault for this call, if one matches.

        ``delay_frame`` is applied here (the call stalls, then proceeds);
        a consumed ``duplicate_frame`` is signalled to the caller; the
        destructive kinds (``drop_frame``, ``disconnect``) are returned
        for the subclass to act on *before* the provider runs.
        """
        if phase is None or self.fault_injector is None:
            return None, False
        fault = self.fault_injector.take_transport_fault(phase, index, attempt)
        if fault is None:
            return None, False
        if fault.kind == "delay_frame":
            time.sleep(fault.delay_seconds)
            return None, False
        if fault.kind == "duplicate_frame":
            return None, True
        return fault, False


class InProcessTransport(Transport):
    """Direct method calls — the provider boundary stays a function call."""

    kind = "inprocess"

    def summary_batch(self, index, requests, epsilon_allocation, *, attempt=1):
        reuse: list[bool] = []
        messages = self.providers[index].prepare_summary_batch(
            requests, epsilon_allocation, reuse_out=reuse
        )
        return messages, reuse

    def answer_batch(self, index, allocations, budget, use_smc, *, attempt=1):
        reuse: list[bool] = []
        answers = self.providers[index].answer_batch(
            allocations, budget, use_smc=use_smc, reuse_out=reuse
        )
        return answers, reuse

    def forget_batch(self, index, query_ids):
        self.providers[index].forget_batch(query_ids)


class _SerializingTransport(Transport):
    """Shared machinery for transports that put every message on a wire."""

    def __init__(self, providers, *, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES, tracer=None):
        super().__init__(providers, max_frame_bytes=max_frame_bytes, tracer=tracer)
        self._seq = 0
        self._seq_lock = threading.Lock()

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _serve_request(self, envelope: dict[str, Any]) -> dict[str, Any]:
        """Execute one decoded request envelope; exceptions become replies."""
        try:
            provider = self.providers[envelope["provider"]]
            op = envelope["op"]
            payload = envelope["payload"]
            trace_parent = payload.pop("trace", None) if isinstance(payload, dict) else None
            if trace_parent is not None and self.tracer is not None:
                with self.tracer.span(
                    f"provider.{op}",
                    parent=tuple(trace_parent),
                    provider=provider.provider_id,
                    side="server",
                    transport=self.kind,
                ):
                    result = _execute_op(provider, op, payload)
            else:
                result = _execute_op(provider, op, payload)
            return {"seq": envelope["seq"], "ok": result}
        except Exception as error:  # noqa: BLE001 - the wire carries it home
            return {
                "seq": envelope["seq"],
                "err": [type(error).__name__, str(error)],
            }

    def _unwrap(self, envelope: dict[str, Any], index: int) -> Any:
        if "err" in envelope:
            name, message = envelope["err"]
            cls = getattr(_errors, name, None)
            if isinstance(cls, type) and issubclass(cls, ReproError):
                raise cls(message)
            raise TransportError(
                f"provider {self.providers[index].provider_id!r} failed: "
                f"{name}: {message}"
            )
        return envelope["ok"]

    def _call(
        self,
        index: int,
        op: str,
        payload: dict[str, Any],
        *,
        phase: str | None = None,
        attempt: int = 1,
    ) -> Any:
        # When a sampled span is active on this thread, wrap the round trip
        # in a client-side rpc span and ship its context in the payload so
        # the server side parents its provider span under it.  With tracing
        # off (or the trace unsampled) the payload — and therefore the wire
        # bytes — is exactly what it was before observability existed.
        active = self.tracer.context() if self.tracer is not None else None
        if active is not None:
            span = self.tracer.span(
                f"rpc.{op}",
                provider=self.providers[index].provider_id,
                attempt=attempt,
                transport=self.kind,
            )
        else:
            span = nullcontext()
        with span as context:
            if context is not None:
                payload = {**payload, "trace": context}
            fault, duplicate = self._take_fault(phase, index, attempt)
            envelope = self._roundtrip(
                index, op, payload, fault=fault, duplicate=duplicate
            )
            return self._unwrap(envelope, index)

    def _roundtrip(self, index, op, payload, *, fault, duplicate):
        raise NotImplementedError

    # Phase calls ---------------------------------------------------------------

    def summary_batch(self, index, requests, epsilon_allocation, *, attempt=1):
        reply = self._call(
            index,
            "summary",
            {"requests": list(requests), "epsilon": float(epsilon_allocation)},
            phase="summary",
            attempt=attempt,
        )
        return list(reply["messages"]), [bool(flag) for flag in reply["reuse"]]

    def answer_batch(self, index, allocations, budget, use_smc, *, attempt=1):
        reply = self._call(
            index,
            "answer",
            {
                "allocations": list(allocations),
                "budget": budget,
                "use_smc": bool(use_smc),
            },
            phase="answer",
            attempt=attempt,
        )
        return list(reply["answers"]), [bool(flag) for flag in reply["reuse"]]

    def forget_batch(self, index, query_ids):
        self._call(index, "forget", {"query_ids": [int(qid) for qid in query_ids]})


class LoopbackTransport(_SerializingTransport):
    """Full wire round trip — serialize, frame, deframe, deserialize — with
    no sockets.  Proves codec losslessness at near-in-process speed."""

    kind = "loopback"

    def __init__(self, providers, *, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES, tracer=None):
        super().__init__(providers, max_frame_bytes=max_frame_bytes, tracer=tracer)
        self._server_decoders = [FrameDecoder(max_frame_bytes) for _ in self.providers]
        self._client_decoders = [FrameDecoder(max_frame_bytes) for _ in self.providers]

    def _roundtrip(self, index, op, payload, *, fault, duplicate):
        provider_id = self.providers[index].provider_id
        seq = self._next_seq()
        request = serialize({"seq": seq, "op": op, "provider": index, "payload": payload})
        frame = encode_frame(request, self.max_frame_bytes)
        self._count_frame(len(frame))
        if fault is not None:
            if fault.kind == "drop_frame":
                with self._stats_lock:
                    self.stats.messages_dropped += 1
                raise TransportError(
                    f"request frame lost on its way to provider {provider_id!r} "
                    f"during {op}"
                )
            raise TransportError(
                f"connection to provider {provider_id!r} dropped during {op}"
            )
        reply_frames: list[bytes] = []
        for request_frame in self._server_decoders[index].feed(frame):
            reply = self._serve_request(deserialize(request_frame))
            reply_frame = encode_frame(serialize(reply), self.max_frame_bytes)
            reply_frames.extend([reply_frame] * (2 if duplicate else 1))
        matched: dict[str, Any] | None = None
        for reply_frame in reply_frames:
            self._count_frame(len(reply_frame))
            for complete in self._client_decoders[index].feed(reply_frame):
                envelope = deserialize(complete)
                if matched is None and envelope.get("seq") == seq:
                    matched = envelope
                else:
                    with self._stats_lock:
                        self.stats.frames_duplicated += 1
        if matched is None:
            raise TransportError(f"no reply from provider {provider_id!r} for {op}")
        return matched


class _SocketConnection:
    """One blocking client connection plus its receive-side decoder."""

    def __init__(self, sock: socket_module.socket, max_frame_bytes: int) -> None:
        self.sock = sock
        self.decoder = FrameDecoder(max_frame_bytes)
        self.frames: list[bytes] = []
        self.lock = threading.Lock()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class SocketTransport(_SerializingTransport):
    """Asyncio TCP on localhost with length-prefixed framing.

    One background event-loop thread hosts every provider behind a single
    listening socket; the aggregator side keeps one blocking connection
    per provider (opened lazily, reopened after a disconnect).  Replies
    are matched to requests by sequence number; a reply frame whose
    sequence was already consumed is discarded and counted in
    ``stats.frames_duplicated``.  Receive timeouts come from
    :attr:`~repro.config.ResilienceConfig.provider_timeout_seconds` and
    raise :class:`~repro.errors.TransportTimeoutError`.
    """

    kind = "socket"

    def __init__(
        self,
        providers,
        *,
        resilience=None,
        max_frame_bytes=DEFAULT_MAX_FRAME_BYTES,
        connect_timeout_seconds: float = 5.0,
        tracer=None,
    ):
        super().__init__(providers, max_frame_bytes=max_frame_bytes, tracer=tracer)
        self._call_timeout = (
            resilience.provider_timeout_seconds if resilience is not None else 30.0
        )
        self._connect_timeout = connect_timeout_seconds
        self._connections: dict[int, _SocketConnection] = {}
        self._connections_lock = threading.Lock()
        self._closed = False
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve_forever, name="repro-transport-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=self._connect_timeout):
            self.close()
            raise TransportError("transport server failed to start in time")
        if self._startup_error is not None:
            self.close()
            raise TransportError(
                f"transport server failed to start: {self._startup_error}"
            ) from self._startup_error

    # Server side ---------------------------------------------------------------

    def _serve_forever(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            self._server = await asyncio.start_server(
                self._handle_connection, "127.0.0.1", 0
            )
            self.port = self._server.sockets[0].getsockname()[1]

        try:
            self._loop.run_until_complete(boot())
        except BaseException as error:  # noqa: BLE001 - reported to the creator
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            if self._server is not None:
                self._server.close()
            self._loop.close()

    async def _handle_connection(self, reader, writer) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = decoder.feed(data)
                except TransportError:
                    # Garbage on the wire: the stream has lost sync, so the
                    # only safe response is to drop the connection.
                    break
                for frame in frames:
                    envelope = deserialize(frame)
                    reply = await self._loop.run_in_executor(
                        None, self._serve_request, envelope
                    )
                    reply_frame = encode_frame(serialize(reply), self.max_frame_bytes)
                    copies = 2 if envelope.get("dup") else 1
                    for _ in range(copies):
                        # Count before the write: the moment the bytes hit
                        # the wire the client may wake up and snapshot the
                        # stats, and the counters must already include them.
                        self._count_frame(len(reply_frame))
                        writer.write(reply_frame)
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass

    # Client side ---------------------------------------------------------------

    def _connection(self, index: int) -> _SocketConnection:
        with self._connections_lock:
            connection = self._connections.get(index)
            if connection is not None:
                return connection
            if self._closed or self.port is None:
                raise TransportError("transport is closed")
            try:
                sock = socket_module.create_connection(
                    ("127.0.0.1", self.port), timeout=self._connect_timeout
                )
            except OSError as error:
                raise TransportError(
                    f"cannot connect to provider host: {error}"
                ) from error
            sock.settimeout(self._call_timeout)
            connection = _SocketConnection(sock, self.max_frame_bytes)
            self._connections[index] = connection
            return connection

    def _drop_connection(self, index: int) -> None:
        with self._connections_lock:
            connection = self._connections.pop(index, None)
        if connection is not None:
            connection.close()

    def _roundtrip(self, index, op, payload, *, fault, duplicate):
        provider_id = self.providers[index].provider_id
        seq = self._next_seq()
        request: dict[str, Any] = {
            "seq": seq,
            "op": op,
            "provider": index,
            "payload": payload,
        }
        if duplicate:
            request["dup"] = True
        frame = encode_frame(serialize(request), self.max_frame_bytes)
        self._count_frame(len(frame))
        if fault is not None:
            if fault.kind == "drop_frame":
                with self._stats_lock:
                    self.stats.messages_dropped += 1
                raise TransportError(
                    f"request frame lost on its way to provider {provider_id!r} "
                    f"during {op}"
                )
            self._drop_connection(index)
            raise TransportError(
                f"connection to provider {provider_id!r} dropped during {op}"
            )
        connection = self._connection(index)
        with connection.lock:
            try:
                connection.sock.sendall(frame)
                return self._read_reply(connection, seq, expect_duplicate=duplicate)
            except socket_module.timeout as error:
                self._drop_connection(index)
                raise TransportTimeoutError(
                    f"provider {provider_id!r} did not answer {op} within "
                    f"{self._call_timeout}s"
                ) from error
            except OSError as error:
                self._drop_connection(index)
                raise TransportError(
                    f"connection to provider {provider_id!r} failed during {op}: "
                    f"{error}"
                ) from error

    def _read_reply(
        self, connection: _SocketConnection, seq: int, *, expect_duplicate: bool
    ) -> dict[str, Any]:
        matched: dict[str, Any] | None = None
        duplicate_seen = False
        while True:
            while connection.frames:
                envelope = deserialize(connection.frames.pop(0))
                if matched is None and envelope.get("seq") == seq:
                    matched = envelope
                else:
                    duplicate_seen = duplicate_seen or envelope.get("seq") == seq
                    with self._stats_lock:
                        self.stats.frames_duplicated += 1
            if matched is not None and (duplicate_seen or not expect_duplicate):
                return matched
            data = connection.sock.recv(65536)
            if not data:
                raise TransportError("provider host closed the connection")
            connection.frames.extend(connection.decoder.feed(data))

    # Lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.closed = True
        with self._connections_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()
        if self._loop.is_running():

            async def shutdown() -> None:
                if self._server is not None:
                    self._server.close()
                current = asyncio.current_task()
                handlers = [
                    task for task in asyncio.all_tasks() if task is not current
                ]
                for task in handlers:
                    task.cancel()
                await asyncio.gather(*handlers, return_exceptions=True)

            try:
                asyncio.run_coroutine_threadsafe(shutdown(), self._loop).result(
                    timeout=5.0
                )
            except Exception:  # noqa: BLE001 - teardown best effort
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


def create_transport(config, providers, *, resilience=None, tracer=None) -> Transport:
    """Build the transport selected by a :class:`~repro.config.TransportConfig`.

    ``None`` (or kind ``"inprocess"``) keeps today's direct calls.  An
    optional ``tracer`` makes the serializing transports record client-side
    ``rpc.*`` and server-side ``provider.*`` spans per call.
    """
    kind = "inprocess" if config is None else config.kind
    if kind == "inprocess":
        return InProcessTransport(providers, tracer=tracer)
    if kind == "loopback":
        return LoopbackTransport(
            providers, max_frame_bytes=config.max_frame_bytes, tracer=tracer
        )
    if kind == "socket":
        return SocketTransport(
            providers,
            resilience=resilience,
            max_frame_bytes=config.max_frame_bytes,
            connect_timeout_seconds=config.connect_timeout_seconds,
            tracer=tracer,
        )
    raise TransportError(f"unknown transport kind {kind!r}")
