"""Data provider: one participant of the horizontal federation.

A provider owns a horizontal partition of the global table stored as clusters
(plus the Algorithm-1 metadata built offline), keeps its rows strictly local,
and exposes exactly the three protocol interactions of Figure 3(a):

1. :meth:`prepare_summary` — identify the covering clusters ``C^Q``, compute
   the approximate proportions ``R̂`` from metadata, and release the noisy
   summary ``(Ñ^Q, ~Avg(R̂))`` under ``eps_O`` (Equation 5).
2. :meth:`answer` — given the aggregator's allocation, either answer exactly
   (when ``N^Q < N_min``) or sample clusters with the DP Exponential
   Mechanism under ``eps_S``, estimate with Hansen-Hurwitz, compute the
   smooth sensitivity, and release the estimate (locally noised under
   ``eps_E``, or un-noised when the SMC path will inject a single noise).
3. :meth:`exact_answer` — the non-private plain-text baseline used by the
   speed-up metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.accounting import QueryBudget
from ..core.result import ProviderReport
from ..core.sensitivity import (
    ClusterSensitivityInputs,
    avg_proportion_sensitivity,
    delta_r,
    estimator_noise_scale,
    estimator_smooth_sensitivity,
)
from ..dp.mechanisms import LaplaceMechanism
from ..errors import ProtocolError
from ..query.executor import ExactExecution, ExactExecutor, execute_on_cluster
from ..query.model import RangeQuery
from ..sampling.em_sampler import EMClusterSampler
from ..sampling.estimator import hansen_hurwitz_estimate
from ..storage.clustered_table import ClusteredTable
from ..storage.metadata import MetadataStore, build_metadata
from ..storage.table import Table
from ..utils.rng import RngLike, derive_rng
from .messages import AllocationMessage, EstimateMessage, QueryRequest, SummaryMessage

__all__ = ["DataProvider", "LocalAnswer"]


@dataclass
class _QuerySession:
    """Per-query state a provider keeps between the summary and answer phases."""

    query: RangeQuery
    covering_ids: list[int]
    proportions: np.ndarray


@dataclass(frozen=True)
class LocalAnswer:
    """A provider's local outcome for one query."""

    message: EstimateMessage
    report: ProviderReport


@dataclass
class DataProvider:
    """One data provider of the federation.

    Parameters
    ----------
    provider_id:
        Unique identifier within the federation.
    table:
        The provider's horizontal partition (raw table or count tensor).
    cluster_size:
        The shared nominal cluster size ``S``.
    n_min:
        Approximation threshold ``N_min``: below this many covering clusters
        the provider answers exactly.
    clustering_policy:
        ``"sequential"`` (default; clusters fill in insertion order, like DBMS
        pages) or ``"sorted"`` (clusters carry skewed value ranges — the
        regime where distribution-aware sampling matters most, used by the
        ablation benches).
    """

    provider_id: str
    table: Table
    cluster_size: int
    n_min: int = 4
    clustering_policy: str = "sequential"
    sort_by: str | None = None
    rng: RngLike = None
    clustered: ClusteredTable = field(init=False, repr=False)
    metadata: MetadataStore = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_min < 1:
            raise ProtocolError(f"n_min must be >= 1, got {self.n_min}")
        self._rng = derive_rng(self.rng, "provider", self.provider_id)
        self.clustered = ClusteredTable.from_table(
            self.table,
            self.cluster_size,
            policy=self.clustering_policy,
            sort_by=self.sort_by,
        )
        self.metadata = build_metadata(self.clustered)
        self._executor = ExactExecutor(self.clustered, self.metadata)
        self._sessions: dict[int, _QuerySession] = {}

    # -- offline properties --------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of clusters held by this provider."""
        return self.clustered.num_clusters

    @property
    def num_rows(self) -> int:
        """Number of stored rows held by this provider."""
        return self.clustered.num_rows

    def metadata_size_bytes(self) -> int:
        """Approximate footprint of the offline metadata (Section 6.1)."""
        return self.metadata.size_bytes()

    # -- protocol step 1: noisy summary ---------------------------------------

    def prepare_summary(self, request: QueryRequest, epsilon_allocation: float) -> SummaryMessage:
        """Release the DP summary ``(Ñ^Q, ~Avg(R̂))`` for the allocation phase."""
        query = request.query.clipped_to(self.clustered.schema)
        ranges = query.range_tuples()
        covering_ids = self.metadata.covering_cluster_ids(ranges)
        proportions = self.metadata.proportions(covering_ids, ranges)
        self._sessions[request.query_id] = _QuerySession(
            query=query, covering_ids=covering_ids, proportions=proportions
        )

        n_q = len(covering_ids)
        avg_r = float(proportions.mean()) if n_q else 0.0
        half_epsilon = epsilon_allocation / 2.0
        dr_sensitivity = avg_proportion_sensitivity(
            self.cluster_size, query.num_dimensions, self.n_min
        )
        count_mechanism = LaplaceMechanism(
            epsilon=half_epsilon, sensitivity=1.0, rng=derive_rng(self._rng, "count", request.query_id)
        )
        avg_mechanism = LaplaceMechanism(
            epsilon=half_epsilon,
            sensitivity=dr_sensitivity,
            rng=derive_rng(self._rng, "avg", request.query_id),
        )
        return SummaryMessage(
            query_id=request.query_id,
            provider_id=self.provider_id,
            noisy_cluster_count=count_mechanism.release(float(n_q)),
            noisy_avg_proportion=avg_mechanism.release(avg_r),
        )

    # -- protocol steps 4-6: sample, estimate, release -------------------------

    def answer(
        self,
        allocation: AllocationMessage,
        budget: QueryBudget,
        *,
        use_smc: bool = False,
    ) -> LocalAnswer:
        """Answer the query locally according to the granted allocation.

        When ``use_smc`` is true the returned estimate is **not** noised; the
        aggregator is expected to secret-share it, sum obliviously, and inject
        a single Laplace noise calibrated with the maximum sensitivity.
        """
        session = self._sessions.get(allocation.query_id)
        if session is None:
            raise ProtocolError(
                f"provider {self.provider_id} received an allocation for unknown "
                f"query {allocation.query_id}"
            )
        query = session.query
        covering_ids = session.covering_ids
        n_q = len(covering_ids)
        rows_available = self.clustered.num_rows

        if n_q < self.n_min:
            return self._answer_exact(allocation, session, budget, use_smc, rows_available)
        return self._answer_approximate(allocation, session, budget, use_smc, rows_available)

    def _answer_exact(
        self,
        allocation: AllocationMessage,
        session: _QuerySession,
        budget: QueryBudget,
        use_smc: bool,
        rows_available: int,
    ) -> LocalAnswer:
        covering = self.clustered.subset(session.covering_ids)
        exact = sum(execute_on_cluster(cluster, session.query) for cluster in covering)
        rows_scanned = sum(cluster.num_rows for cluster in covering)
        # Adding or removing one individual changes COUNT(*) / SUM(Measure)
        # by at most 1, so the exact path uses global sensitivity 1.
        sensitivity = 1.0
        noise = 0.0
        if not use_smc:
            mechanism = LaplaceMechanism(
                epsilon=budget.epsilon_estimation,
                sensitivity=sensitivity,
                rng=derive_rng(self._rng, "exact-noise", allocation.query_id),
            )
            noise = float(mechanism.sample_noise())
        report = ProviderReport(
            provider_id=self.provider_id,
            covering_clusters=len(covering),
            allocation=allocation.sample_size,
            sampled_clusters=len(covering),
            approximated=False,
            local_estimate=float(exact),
            local_noise=noise,
            smooth_sensitivity=sensitivity,
            rows_scanned=rows_scanned,
            rows_available=rows_available,
            exact_local_answer=exact,
        )
        message = EstimateMessage(
            query_id=allocation.query_id,
            provider_id=self.provider_id,
            value=float(exact) + noise,
            smooth_sensitivity=sensitivity,
            approximated=False,
        )
        return LocalAnswer(message=message, report=report)

    def _answer_approximate(
        self,
        allocation: AllocationMessage,
        session: _QuerySession,
        budget: QueryBudget,
        use_smc: bool,
        rows_available: int,
    ) -> LocalAnswer:
        query = session.query
        covering_ids = session.covering_ids
        proportions = session.proportions
        sample_size = max(1, min(allocation.sample_size, len(covering_ids)))

        sampler = EMClusterSampler(
            epsilon=budget.epsilon_sampling,
            n_min=self.n_min,
            rng=derive_rng(self._rng, "em", allocation.query_id),
        )
        outcome = sampler.sample(proportions, sample_size)
        # Hansen-Hurwitz weights must match the distribution the clusters
        # were actually drawn from (the DP selection distribution), otherwise
        # near-zero approximate proportions blow the estimate up; see the
        # estimator-consistency note in DESIGN.md.
        weights = outcome.selection_probabilities
        selected = list(outcome.selected_indices)
        sampled_ids = [covering_ids[i] for i in selected]
        sampled_clusters = self.clustered.subset(sampled_ids)
        unique_scan_ids = set(sampled_ids)

        values = np.array(
            [execute_on_cluster(cluster, query) for cluster in sampled_clusters], dtype=float
        )
        rows_scanned = sum(
            cluster.num_rows
            for cluster in self.clustered.subset(sorted(unique_scan_ids))
        )
        estimate = hansen_hurwitz_estimate(values, weights[selected])

        dr_value = delta_r(self.cluster_size, query.num_dimensions)
        sum_proportions = float(proportions.sum())
        smooth_values = [
            estimator_smooth_sensitivity(
                ClusterSensitivityInputs(
                    cluster_value=float(values[position]),
                    # A selected cluster holding matching rows has a true
                    # proportion of at least one row over S; flooring the
                    # approximate R̂ there keeps the scenario-1 local
                    # sensitivity finite when the independence approximation
                    # returned zero.
                    proportion=max(float(proportions[index]), 1.0 / self.cluster_size),
                    probability=float(weights[index]),
                ),
                sum_proportions=sum_proportions,
                delta_r_value=dr_value,
                epsilon=budget.epsilon_estimation,
                delta=budget.delta,
            )
            for position, index in enumerate(selected)
        ]
        smooth_sensitivity = float(np.mean(smooth_values)) if smooth_values else 1.0

        noise = 0.0
        if not use_smc:
            scale = estimator_noise_scale(smooth_values, budget.epsilon_estimation)
            noise = float(
                derive_rng(self._rng, "est-noise", allocation.query_id).laplace(0.0, scale)
            )

        report = ProviderReport(
            provider_id=self.provider_id,
            covering_clusters=len(covering_ids),
            allocation=allocation.sample_size,
            sampled_clusters=len(unique_scan_ids),
            approximated=True,
            local_estimate=float(estimate),
            local_noise=noise,
            smooth_sensitivity=smooth_sensitivity,
            rows_scanned=rows_scanned,
            rows_available=rows_available,
        )
        message = EstimateMessage(
            query_id=allocation.query_id,
            provider_id=self.provider_id,
            value=float(estimate) + noise,
            smooth_sensitivity=smooth_sensitivity,
            approximated=True,
        )
        return LocalAnswer(message=message, report=report)

    # -- baseline --------------------------------------------------------------

    def exact_answer(self, query: RangeQuery) -> ExactExecution:
        """Plain-text exact execution over this provider's covering clusters."""
        return self._executor.execute(query.clipped_to(self.clustered.schema))

    def forget(self, query_id: int) -> None:
        """Drop the per-query session state (idempotent)."""
        self._sessions.pop(query_id, None)
