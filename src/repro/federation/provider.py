"""Data provider: one participant of the horizontal federation.

A provider owns a horizontal partition of the global table stored as clusters
(plus the Algorithm-1 metadata built offline), keeps its rows strictly local,
and exposes the three protocol interactions of Figure 3(a) — each in a
single-query and a batched form:

1. :meth:`prepare_summary` / :meth:`prepare_summary_batch` — identify the
   covering clusters ``C^Q``, compute the approximate proportions ``R̂`` from
   metadata, and release the noisy summary ``(Ñ^Q, ~Avg(R̂))`` under
   ``eps_O`` (Equation 5).  The batched form evaluates every query's covering
   mask and proportions against the dense metadata index in one pass.
2. :meth:`answer` / :meth:`answer_batch` — given the aggregator's allocation,
   either answer exactly (when ``N^Q < N_min``) or sample clusters with the
   DP Exponential Mechanism under ``eps_S``, estimate with Hansen-Hurwitz,
   compute the smooth sensitivity, and release the estimate (locally noised
   under ``eps_E``, or un-noised when the SMC path will inject a single
   noise).  The batched form evaluates ``Q(C)`` for every needed
   (query, cluster) pair in one vectorised pass over the contiguous cluster
   layout; per-query EM sampling is semantically unchanged.
3. :meth:`exact_answer` / :meth:`exact_answer_batch` — the non-private
   plain-text baseline used by the speed-up metric.

Randomness: each query gets one independent child generator derived from the
provider's root RNG, keyed by the query id, at summary time.  All of a
query's draws (summary noise, EM sampling, estimate noise) consume that
per-query stream in a fixed order, so executing a workload as one batch or as
a sequence of single queries produces bit-identical results.

Reuse: when the provider's :class:`~repro.config.CacheConfig` is enabled, the
provider memoizes every *released* artifact — the noisy summary of step 1 and
the noisy estimate of step 2 — in a :class:`~repro.cache.store.ReleaseCache`.
A later query with the same canonical predicate at the same phase budgets is
served the stored bytes verbatim: pure DP post-processing, so no budget is
spent, no fresh noise is drawn, and (for answers) no cluster is scanned.
Cache misses run exactly the code path of the disabled cache, so on a
duplicate-free workload a cold cache is bit-identical to no cache under the
same seed.  (A workload that repeats a predicate *within* one batch is
served by reuse even when cold — the repeat aliases the first occurrence's
release instead of drawing the independent noise the disabled cache would.)

Ingestion: the provider also owns a :class:`~repro.ingest.delta.DeltaStore`
(:meth:`DataProvider.ingest_rows`) absorbing appended rows without touching
the clustered layout; every query session pins a ``(layout_epoch,
delta_watermark)`` snapshot at summary time and answers the delta prefix it
pinned exactly, and :meth:`DataProvider.compact` folds the buffer back into
the clustering incrementally.  See ``docs/ingestion.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..cache.key import answer_key, key_delta_watermark, key_query_ranges, summary_key
from ..cache.store import ReleaseCache
from ..config import DEFAULT_INGEST, CacheConfig, ExecutionConfig, IngestConfig
from ..core.accounting import QueryBudget
from ..core.result import ProviderReport
from ..core.sensitivity import (
    avg_proportion_sensitivity,
    delta_r,
    estimator_smooth_sensitivities,
    sampling_probability_sensitivity,
)
from ..dp.mechanisms import LaplaceMechanism, laplace_noise_scale
from ..errors import ProtocolError
from ..ingest.compaction import (
    CompactionPolicy,
    CompactionReport,
    fold_into_clustered,
    incremental_eligible,
)
from ..ingest.delta import DeltaStore, IngestReceipt
from ..obs.trace import ambient_span
from ..query.batch import QueryBatch
from ..query.executor import ExactExecution, ExactExecutor
from ..query.model import RangeQuery
from ..storage.clustered_table import ClusteredTable
from ..storage.metadata import (
    MetadataStore,
    QueryCostStats,
    build_metadata,
    patch_metadata,
)
from ..storage.table import Table
from ..utils.rng import RngLike, derive_rng
from .messages import AllocationMessage, EstimateMessage, QueryRequest, SummaryMessage

__all__ = ["DataProvider", "LocalAnswer"]


@dataclass
class _QuerySession:
    """Per-query state a provider keeps between the summary and answer phases.

    ``covering_positions`` are storage-order positions into the cluster
    layout (cheaper than ids for the vectorised kernels).  ``rng`` is the
    query's private random stream; every stochastic step of this query
    (summary noise, EM sampling, estimate noise) draws from it in a fixed
    order, which is what makes batched and sequential execution
    bit-identical.

    Sessions opened by a summary *cache hit* are lazy: the covering set and
    proportions are only materialised (in one vectorised metadata pass) if
    the answer phase turns out to need a fresh release — a fully cached
    query never touches the metadata index at all.

    ``delta_watermark`` pins the query's ingestion snapshot: the number of
    delta-store rows visible to it, captured when the session opened.  The
    answer phase reads exactly that prefix of the append buffer, so rows
    ingested between the summary and answer phases never change an
    in-flight query's result (snapshot isolation).
    """

    query: RangeQuery
    rng: np.random.Generator
    covering_positions: np.ndarray | None = None
    proportions: np.ndarray | None = None
    proportions_sum: float = 0.0
    delta_watermark: int = 0


@dataclass(frozen=True)
class LocalAnswer:
    """A provider's local outcome for one query."""

    message: EstimateMessage
    report: ProviderReport


@dataclass
class _AnswerPlan:
    """Planned local answer for one query, before ``Q(C)`` evaluation.

    For approximating queries, :meth:`DataProvider._select_clusters` fills
    ``selection`` (the Exponential-Mechanism distribution — the
    Hansen-Hurwitz weights), ``selected`` (the with-replacement draw), the
    needed/unique cluster positions, and the clamped ``sample_size``.
    """

    allocation: AllocationMessage
    session: _QuerySession
    exact: bool
    needed_positions: np.ndarray
    selected: np.ndarray | None = None
    selection: np.ndarray | None = None
    unique_positions: np.ndarray | None = None
    sample_size: int = 0


@dataclass
class DataProvider:
    """One data provider of the federation.

    Parameters
    ----------
    provider_id:
        Unique identifier within the federation.
    table:
        The provider's horizontal partition (raw table or count tensor).
    cluster_size:
        The shared nominal cluster size ``S``.
    n_min:
        Approximation threshold ``N_min``: below this many covering clusters
        the provider answers exactly.
    clustering_policy:
        ``"sequential"`` (default; clusters fill in insertion order, like DBMS
        pages) or ``"sorted"`` (clusters carry skewed value ranges — the
        regime where distribution-aware sampling matters most, used by the
        ablation benches).
    cache_config:
        Release-cache policy (:class:`~repro.config.CacheConfig`); ``None``
        or a disabled config keeps the provider on the plain protocol path.
    intra_sort_by:
        Optionally sort each cluster's rows by this dimension at build time
        (cluster membership unchanged) so the layout's bisection kernels
        apply; see :meth:`repro.storage.clustered_table.ClusteredTable.from_table`.
    execution_config:
        Kernel policy (:class:`~repro.config.ExecutionConfig`) for the
        exact ``Q(C)`` evaluation; ``None`` uses the library default
        (pruned, sorted-bisect, 64 MiB kernel budget).
    ingest_config:
        Streaming-ingestion policy (:class:`~repro.config.IngestConfig`):
        when :meth:`ingest_rows` may auto-compact and at what delta size;
        ``None`` uses the library default.
    """

    provider_id: str
    table: Table
    cluster_size: int
    n_min: int = 4
    clustering_policy: str = "sequential"
    sort_by: str | None = None
    cache_config: CacheConfig | None = None
    intra_sort_by: str | None = None
    execution_config: ExecutionConfig | None = None
    ingest_config: IngestConfig | None = None
    rng: RngLike = None
    clustered: ClusteredTable = field(init=False, repr=False)
    metadata: MetadataStore = field(init=False, repr=False)
    cache: ReleaseCache = field(init=False, repr=False)
    delta: DeltaStore = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_min < 1:
            raise ProtocolError(f"n_min must be >= 1, got {self.n_min}")
        self._rng = derive_rng(self.rng, "provider", self.provider_id)
        # Stable entropy prefix of the *keyed* per-query streams (requests
        # carrying ``seed_material``).  Derived once at construction — after
        # the root-stream derivation above, so existing positional draws are
        # unchanged — and copied verbatim into process-backend workers, which
        # rebuild providers from a placeholder seed.
        self._stream_entropy: tuple[int, ...] = tuple(
            int(value)
            for value in derive_rng(self.rng, "stream", self.provider_id).integers(
                0, 2**32, size=4
            )
        )
        self.cache = ReleaseCache(self.cache_config or CacheConfig())
        self.delta = DeltaStore(self.table.schema)
        self._compaction_policy = CompactionPolicy.from_config(
            self.ingest_config or DEFAULT_INGEST
        )
        self._layout_epoch = 0
        self._layout_subscribers: list = []
        self._build_layout()
        self._sessions: dict[int, _QuerySession] = {}

    def _build_layout(self) -> None:
        self.clustered = ClusteredTable.from_table(
            self.table,
            self.cluster_size,
            policy=self.clustering_policy,
            sort_by=self.sort_by,
            intra_sort_by=self.intra_sort_by,
        )
        self.metadata = build_metadata(self.clustered)
        self._executor = ExactExecutor(
            self.clustered, self.metadata, execution=self.execution_config
        )

    # -- offline properties --------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of clusters held by this provider."""
        return self.clustered.num_clusters

    @property
    def num_rows(self) -> int:
        """Number of stored rows held by this provider."""
        return self.clustered.num_rows

    @property
    def num_open_sessions(self) -> int:
        """Number of per-query sessions currently held (leak monitoring)."""
        return len(self._sessions)

    @property
    def layout_epoch(self) -> int:
        """Monotonic clustering-layout version (bumped by :meth:`rebuild_layout`).

        Cache entries record the epoch they were released under; a mismatch
        makes them stale, so a re-clustered provider can never serve
        summaries of a layout that no longer exists.
        """
        return self._layout_epoch

    @property
    def delta_rows(self) -> int:
        """Number of ingested rows buffered in the delta store."""
        return self.delta.watermark

    @property
    def delta_watermark(self) -> int:
        """The current ingestion watermark (appended rows since last fold)."""
        return self.delta.watermark

    def snapshot(self) -> tuple[int, int]:
        """The ``(layout_epoch, delta_watermark)`` coordinates a new query pins."""
        return (self._layout_epoch, self.delta.watermark)

    def subscribe_layout_change(self, callback) -> None:
        """Register ``callback(provider)`` to fire after every layout change.

        Fired by :meth:`rebuild_layout` and :meth:`compact` *after* the new
        layout, metadata, and epoch are installed.  The aggregator uses this
        to eagerly tear down process-pool workers (and their shared-memory
        snapshots of the old layout) instead of detecting the stale epoch
        lazily on the next batch.
        """
        self._layout_subscribers.append(callback)

    def _notify_layout_change(self) -> None:
        for callback in list(self._layout_subscribers):
            callback(self)

    def metadata_size_bytes(self) -> int:
        """Approximate footprint of the offline metadata (Section 6.1)."""
        return self.metadata.size_bytes()

    def cost_stats_batch(self, queries: Sequence[RangeQuery]) -> list[QueryCostStats]:
        """Zone-map work statistics for a workload against the *current* layout.

        One :class:`~repro.storage.metadata.QueryCostStats` per query —
        clusters touched, covered-vs-straddler split, straddler row volume —
        computed from the same metadata the covering-set pass reads, so the
        estimate costs no row access and no privacy budget.  The serving
        layer's :class:`~repro.service.costmodel.CostModel` combines these
        across providers; estimates are only as fresh as the layout they
        were read from, so callers re-estimate when
        :attr:`layout_epoch` / :attr:`delta_watermark` move (compaction
        rewrites the zone maps).
        """
        return self.metadata.cost_stats_batch(
            [query.range_tuples() for query in queries]
        )

    def rebuild_layout(
        self,
        *,
        clustering_policy: str | None = None,
        sort_by: str | None = None,
    ) -> None:
        """Re-cluster the partition and invalidate every cached release.

        Any rows still buffered in the delta store are folded into the base
        table first, so a rebuild always absorbs pending ingest — the
        rebuilt clustering is exactly ``from_table`` on the union of rows.
        Layout-change subscribers (the aggregator's eager process-pool
        invalidation) fire after the new layout is installed.

        Parameters
        ----------
        clustering_policy, sort_by:
            Optional overrides; omitted values keep the current settings.

        Raises
        ------
        ProtocolError
            When called while per-query sessions are open (mid-protocol
            rebuilds would leave sessions pointing at dead cluster
            positions).
        """
        if self._sessions:
            raise ProtocolError(
                f"provider {self.provider_id} cannot rebuild its layout with "
                f"{len(self._sessions)} open sessions"
            )
        if clustering_policy is not None:
            self.clustering_policy = clustering_policy
        if sort_by is not None:
            self.sort_by = sort_by
        pending = self.delta.take_all()
        if pending.num_rows:
            self.table = Table.concat([self.table, pending])
        self._build_layout()
        self._layout_epoch += 1
        self.cache.purge_stale(self._layout_epoch)
        self._notify_layout_change()

    # -- streaming ingestion -----------------------------------------------------

    def ingest_rows(
        self, rows: Table, *, auto_compact: bool | None = None
    ) -> IngestReceipt:
        """Append a batch of rows to the delta store (O(1) w.r.t. stored data).

        The clustered layout, metadata, and cached releases are untouched:
        new rows become visible to queries whose sessions open *after* this
        call (their snapshot pins the advanced watermark), while in-flight
        sessions keep reading their pinned prefix.

        Parameters
        ----------
        rows:
            The appended rows; must match the provider's schema, with every
            dimension value inside its declared domain.
        auto_compact:
            Override of the configured
            :attr:`~repro.config.IngestConfig.auto_compact`: when active and
            the compaction policy's thresholds trip (and no per-query
            sessions are open), the append immediately triggers
            :meth:`compact`.

        Returns
        -------
        IngestReceipt
            The post-append ``(watermark, epoch)`` coordinates and whether
            the append triggered a compaction.
        """
        config = self.ingest_config or DEFAULT_INGEST
        with ambient_span(
            "provider.ingest", provider=self.provider_id, rows=rows.num_rows
        ):
            self.delta.append(rows)
            compacted = False
            should = config.auto_compact if auto_compact is None else auto_compact
            if should and not self._sessions:
                if self._compaction_policy.due(
                    self.delta.watermark, self.clustered.num_rows
                ):
                    self.compact()
                    compacted = True
        return IngestReceipt(
            provider_id=self.provider_id,
            rows=rows.num_rows,
            delta_watermark=self.delta.watermark,
            layout_epoch=self._layout_epoch,
            compacted=compacted,
        )

    def compact(self) -> CompactionReport:
        """Fold the delta buffer into the clustered layout, incrementally.

        Only the affected tail clusters are re-clustered (see
        :func:`~repro.ingest.compaction.fold_into_clustered`), the metadata
        index is patched in place for those positions, the layout epoch is
        bumped, and the release cache keeps every entry whose query box
        cannot touch the re-clustered region (re-tagged to the new epoch)
        instead of being wiped.  The post-compaction provider is
        bit-identical — layout, metadata, and query answers — to one built
        from scratch on the union of rows.

        Raises
        ------
        ProtocolError
            When per-query sessions are open: their covering positions
            reference the pre-fold clustering.  The serving layer only
            compacts between batches, where no session exists.
        """
        if self._sessions:
            raise ProtocolError(
                f"provider {self.provider_id} cannot compact with "
                f"{len(self._sessions)} open sessions"
            )
        deltas = self.delta.take_all()
        clusters_before = self.clustered.num_clusters
        if deltas.num_rows == 0:
            return CompactionReport(
                provider_id=self.provider_id,
                rows_folded=0,
                first_affected_position=clusters_before,
                clusters_before=clusters_before,
                clusters_after=clusters_before,
                layout_epoch=self._layout_epoch,
                incremental=True,
            )
        old_layout = self.clustered.layout()
        self.table = Table.concat([self.table, deltas])
        eligible = incremental_eligible(
            self.clustering_policy, self.sort_by, self.intra_sort_by, self.clustered.schema
        )
        if eligible:
            self.clustered, first_affected = fold_into_clustered(
                self.clustered,
                deltas,
                clustering_policy=self.clustering_policy,
                sort_by=self.sort_by,
                intra_sort_by=self.intra_sort_by,
            )
            self.metadata = patch_metadata(self.metadata, self.clustered, first_affected)
            self._executor = ExactExecutor(
                self.clustered, self.metadata, execution=self.execution_config
            )
        else:
            first_affected = 0
            self._build_layout()
        self._layout_epoch += 1
        changed_bounds = self._changed_bounds(
            old_layout, self.clustered.layout(), first_affected
        )
        purged, retained = self.cache.rekey_epoch(
            self._layout_epoch,
            lambda key: self._release_survives_fold(key, changed_bounds),
        )
        self._notify_layout_change()
        return CompactionReport(
            provider_id=self.provider_id,
            rows_folded=deltas.num_rows,
            first_affected_position=first_affected,
            clusters_before=clusters_before,
            clusters_after=self.clustered.num_clusters,
            layout_epoch=self._layout_epoch,
            incremental=eligible,
            cache_entries_purged=purged,
            cache_entries_retained=retained,
        )

    @staticmethod
    def _changed_bounds(old_layout, new_layout, first_affected: int) -> dict:
        """Bounding box of every cluster the fold removed, rewrote, or added.

        Per dimension, the union of the zone bounds of the old and new
        clusters at positions ``>= first_affected`` (empty clusters carry
        inverted sentinels and contribute nothing).  A query box disjoint
        from this region on any dimension cannot have covered a changed
        cluster before the fold nor cover one after it.
        """
        bounds: dict[str, tuple[int, int]] = {}
        for name in new_layout.columns:
            lows: list[int] = []
            highs: list[int] = []
            for layout in (old_layout, new_layout):
                nonempty = layout.cluster_rows[first_affected:] > 0
                if nonempty.any():
                    lows.append(int(layout.zone_min[name][first_affected:][nonempty].min()))
                    highs.append(int(layout.zone_max[name][first_affected:][nonempty].max()))
            if lows:
                bounds[name] = (min(lows), max(highs))
        return bounds

    @staticmethod
    def _release_survives_fold(key: tuple, changed_bounds: dict) -> bool:
        """Is a cached release still exact after the fold?

        Two staleness sources compose:

        * an answer evaluated at a non-zero delta watermark embedded rows
          that are now part of the clustered table — its key can never be
          probed again (post-fold watermarks restart at zero), so it is
          dropped rather than risking a collision with a future delta of
          the same length;
        * a release whose query box intersects the changed region on every
          dimension could observe a re-clustered or freshly added cluster —
          a fresh release might differ, so it is dropped.  Everything else
          would be re-released bit-identically (same covering positions,
          proportions, and ``Q(C)`` values) and is retained.
        """
        if key_delta_watermark(key) > 0:
            return False
        for name, (changed_low, changed_high) in changed_bounds.items():
            for range_name, low, high in key_query_ranges(key):
                if range_name == name and (high < changed_low or low > changed_high):
                    return True
        return False

    # -- cache peeks (reuse planner) -------------------------------------------

    def peek_summary_release(
        self, query: RangeQuery, epsilon_allocation: float
    ) -> tuple[float, float] | None:
        """Return the cached summary ``(Ñ^Q, ~Avg(R̂))`` without serving it.

        Used by the :class:`~repro.cache.planner.ReusePlanner` to bound a
        batch's budget charge before execution; never mutates the cache.
        """
        clipped = query.clipped_to(self.clustered.schema)
        return self.cache.peek(
            summary_key(clipped, epsilon_allocation),
            epoch=self._layout_epoch,
            rounds_ahead=1,
        )

    def peek_answer_release(
        self, query: RangeQuery, budget: QueryBudget, sample_size: int
    ) -> bool:
        """True when the local answer for this allocation is cached."""
        clipped = query.clipped_to(self.clustered.schema)
        return (
            self.cache.peek(
                answer_key(
                    clipped,
                    budget,
                    sample_size,
                    delta_watermark=self.delta.watermark,
                ),
                epoch=self._layout_epoch,
                rounds_ahead=1,
            )
            is not None
        )

    # -- protocol step 1: noisy summary ---------------------------------------

    def _keyed_stream(self, seed_material: Sequence[int]) -> np.random.Generator:
        """Per-query generator keyed by ``seed_material`` (order-independent).

        The stream depends only on the provider's stable entropy (fixed at
        construction from the system seed) and the caller-supplied material —
        never on how many draws the root stream has served — so the same
        ``(seed, material)`` pair yields the same noise in any batch, any
        interleaving, and any parallelism backend.
        """
        entropy = list(self._stream_entropy) + [
            int(part) & 0xFFFFFFFF for part in seed_material
        ]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def prepare_summary(self, request: QueryRequest, epsilon_allocation: float) -> SummaryMessage:
        """Release the DP summary ``(Ñ^Q, ~Avg(R̂))`` for the allocation phase."""
        return self.prepare_summary_batch([request], epsilon_allocation)[0]

    def prepare_summary_batch(
        self,
        requests: Sequence[QueryRequest],
        epsilon_allocation: float,
        *,
        reuse_out: list[bool] | None = None,
    ) -> list[SummaryMessage]:
        """Release the DP summaries for a whole workload in one metadata pass.

        Covering sets and proportions for every query are computed against
        the dense index in one shot; the per-query RNG children are derived
        in request order so a batch of ``n`` and ``n`` single-query calls
        consume the provider's root stream identically.

        Parameters
        ----------
        requests:
            The workload, in execution order.
        epsilon_allocation:
            The summary-phase budget ``eps_O`` (split evenly across the two
            released scalars).
        reuse_out:
            Optional list the method appends one flag per request to: True
            when that query's summary was served from the release cache
            (post-processing, no budget spent, no noise drawn), False when
            it was freshly released.

        Returns
        -------
        list of SummaryMessage
            One summary per request, aligned with the request order.  A
            cache hit re-serves the original release's noisy scalars
            byte-for-byte; only metadata work is the fresh queries'.
        """
        with ambient_span(
            "provider.summary_batch",
            provider=self.provider_id,
            queries=len(requests),
        ):
            return self._prepare_summary_batch_impl(
                requests, epsilon_allocation, reuse_out=reuse_out
            )

    def _prepare_summary_batch_impl(
        self,
        requests: Sequence[QueryRequest],
        epsilon_allocation: float,
        *,
        reuse_out: list[bool] | None = None,
    ) -> list[SummaryMessage]:
        if not requests:
            return []
        schema = self.clustered.schema
        queries = [request.query.clipped_to(schema) for request in requests]
        # The whole batch pins one ingestion snapshot: rows appended from
        # here on are invisible to these sessions (snapshot isolation).
        # The summary itself describes the clustered main table only — the
        # unclustered delta is answered exactly at the answer phase, so it
        # plays no role in the cluster-sampling allocation.
        pinned_watermark = self.delta.watermark
        cache = self.cache
        cache.advance_round()
        cached_releases: list[tuple[float, float] | None] = [None] * len(requests)
        keys: list[tuple | None] = [None] * len(requests)
        # A repeated predicate inside one batch is reuse too: the first
        # occurrence releases, later ones alias it (one release, served n
        # times).  ``duplicate_of`` maps each aliased index to its source.
        duplicate_of: dict[int, int] = {}
        if cache.enabled:
            first_occurrence: dict[tuple, int] = {}
            for index, query in enumerate(queries):
                key = summary_key(query, epsilon_allocation)
                keys[index] = key
                cached_releases[index] = cache.get(key, epoch=self._layout_epoch)
                if cached_releases[index] is None:
                    if key in first_occurrence:
                        duplicate_of[index] = first_occurrence[key]
                    else:
                        first_occurrence[key] = index
        fresh = [
            index
            for index in range(len(requests))
            if cached_releases[index] is None and index not in duplicate_of
        ]
        # Open one (lazy) session per request, then run the vectorised
        # metadata pass over the fresh queries only: cache hits defer
        # covering/proportions until (and unless) the answer phase needs a
        # fresh release.
        #
        # One bulk draw seeds every per-query child stream; numpy's bounded
        # integer sampling consumes the bit stream per value, so a bulk draw
        # of n seeds equals n consecutive single draws — which is what keeps
        # batch and sequential execution on identical streams.  Cache hits
        # keep their (otherwise untouched) child stream: it seeds the
        # answer-phase randomness if the answer later misses.
        #
        # Requests carrying ``seed_material`` opt out of the positional draw:
        # their child stream is keyed by (provider stream entropy, material),
        # so it is identical however the surrounding batch is composed — the
        # property the multi-tenant scheduler's coalescing relies on.  The
        # root stream is not consumed for them, keeping positional traffic
        # unaffected by how much keyed traffic ran before it.
        positional = [
            index
            for index, request in enumerate(requests)
            if request.seed_material is None
        ]
        child_seeds: dict[int, int] = {}
        if positional:
            draws = self._rng.integers(0, 2**63, size=len(positional))
            child_seeds = {
                index: int(draws[slot]) for slot, index in enumerate(positional)
            }
        for index, (request, query) in enumerate(zip(requests, queries)):
            if request.seed_material is None:
                rng = np.random.default_rng(child_seeds[index])
            else:
                rng = self._keyed_stream(request.seed_material)
            self._sessions[request.query_id] = _QuerySession(
                query=query, rng=rng, delta_watermark=pinned_watermark
            )
        self._materialize_sessions(
            [self._sessions[requests[index].query_id] for index in fresh]
        )
        half_epsilon = epsilon_allocation / 2.0
        # Validate the phase budget once per batch; the per-query noise draws
        # below use the Lap(sensitivity / eps) calibration directly.
        count_scale = laplace_noise_scale(1.0, half_epsilon)
        avg_scales = {
            dimensions: laplace_noise_scale(
                avg_proportion_sensitivity(self.cluster_size, dimensions, self.n_min),
                half_epsilon,
            )
            for dimensions in {queries[index].num_dimensions for index in fresh}
        }
        summaries: list[SummaryMessage] = []
        for index, (request, query) in enumerate(zip(requests, queries)):
            session = self._sessions[request.query_id]
            cached = cached_releases[index]
            if cached is None and index in duplicate_of:
                # Intra-batch alias: the source query (an earlier index)
                # already released this summary within this loop.
                source = summaries[duplicate_of[index]]
                cached = (source.noisy_cluster_count, source.noisy_avg_proportion)
            if cached is not None:
                # Post-processing: re-serve the original release verbatim.
                summaries.append(
                    SummaryMessage(
                        query_id=request.query_id,
                        provider_id=self.provider_id,
                        noisy_cluster_count=cached[0],
                        noisy_avg_proportion=cached[1],
                    )
                )
                continue
            n_q = int(session.covering_positions.size)
            avg_r = session.proportions_sum / n_q if n_q else 0.0
            message = SummaryMessage(
                query_id=request.query_id,
                provider_id=self.provider_id,
                noisy_cluster_count=float(n_q)
                + float(session.rng.laplace(0.0, count_scale)),
                noisy_avg_proportion=avg_r
                + float(session.rng.laplace(0.0, avg_scales[query.num_dimensions])),
            )
            summaries.append(message)
            if cache.enabled:
                cache.put(
                    keys[index],
                    (message.noisy_cluster_count, message.noisy_avg_proportion),
                    epoch=self._layout_epoch,
                    epsilon=epsilon_allocation,
                )
        if reuse_out is not None:
            reuse_out.extend(
                cached_releases[index] is not None or index in duplicate_of
                for index in range(len(requests))
            )
        return summaries

    # -- protocol steps 4-6: sample, estimate, release -------------------------

    def answer(
        self,
        allocation: AllocationMessage,
        budget: QueryBudget,
        *,
        use_smc: bool = False,
    ) -> LocalAnswer:
        """Answer one query locally according to the granted allocation.

        When ``use_smc`` is true the returned estimate is **not** noised; the
        aggregator is expected to secret-share it, sum obliviously, and inject
        a single Laplace noise calibrated with the maximum sensitivity.
        """
        return self.answer_batch([allocation], budget, use_smc=use_smc)[0]

    def answer_batch(
        self,
        allocations: Sequence[AllocationMessage],
        budget: QueryBudget,
        *,
        use_smc: bool = False,
        reuse_out: list[bool] | None = None,
    ) -> list[LocalAnswer]:
        """Answer a workload locally with vectorised sampling and evaluation.

        Per-query EM cluster sampling is semantically identical to the
        single-query path (each query draws from its own session stream), but
        the selection distributions of all queries are computed in one
        flattened pass, the exact per-cluster values for all
        (query, needed-cluster) pairs are evaluated with one boolean-mask +
        segmented-reduction pass, and the Hansen-Hurwitz / smooth-sensitivity
        arithmetic of the whole batch runs flattened as well.

        Parameters
        ----------
        allocations:
            The granted sample sizes, aligned with the summary-phase
            request order.
        budget:
            The per-phase budgets; a fresh answer spends ``eps_S`` (cluster
            sampling) and ``eps_E`` (estimate release).
        use_smc:
            When true the returned estimates are un-noised (the aggregator
            injects one noise after the oblivious sum); SMC answers are
            never cached because the released value is not formed locally.
        reuse_out:
            Optional list the method appends one flag per allocation to:
            True when the answer was served from the release cache (or
            aliased to an identical release earlier in this batch) — no
            budget spent, no cluster scanned — False when it was freshly
            computed.

        Returns
        -------
        list of LocalAnswer
            One local answer per allocation, aligned with the input order.
            A cache hit re-serves the original estimate message and report
            byte-for-byte (only the transport ``query_id`` is rewritten).
        """
        with ambient_span(
            "provider.answer_batch",
            provider=self.provider_id,
            queries=len(allocations),
        ):
            return self._answer_batch_impl(
                allocations, budget, use_smc=use_smc, reuse_out=reuse_out
            )

    def _answer_batch_impl(
        self,
        allocations: Sequence[AllocationMessage],
        budget: QueryBudget,
        *,
        use_smc: bool = False,
        reuse_out: list[bool] | None = None,
    ) -> list[LocalAnswer]:
        if not allocations:
            return []
        cache = self.cache
        use_cache = cache.enabled and not use_smc
        results: list[LocalAnswer | None] = [None] * len(allocations)
        hit_flags = [False] * len(allocations)
        sessions: list[_QuerySession] = []
        keys: list[tuple | None] = [None] * len(allocations)
        # key -> (first fresh index, aliased later indices): duplicates of a
        # release produced earlier in this very batch are reuse as well.
        pending: dict[tuple, tuple[int, list[int]]] = {}
        fresh: list[int] = []
        for index, allocation in enumerate(allocations):
            if allocation.provider_id != self.provider_id:
                raise ProtocolError(
                    f"provider {self.provider_id} received an allocation addressed "
                    f"to {allocation.provider_id!r}"
                )
            session = self._sessions.get(allocation.query_id)
            if session is None:
                raise ProtocolError(
                    f"provider {self.provider_id} received an allocation for unknown "
                    f"query {allocation.query_id}"
                )
            sessions.append(session)
            if use_cache:
                key = answer_key(
                    session.query,
                    budget,
                    allocation.sample_size,
                    delta_watermark=session.delta_watermark,
                )
                keys[index] = key
                cached = cache.get(key, epoch=self._layout_epoch)
                if cached is not None:
                    message, report = cached
                    results[index] = LocalAnswer(
                        message=replace(message, query_id=allocation.query_id),
                        report=report,
                    )
                    hit_flags[index] = True
                    continue
                owner = pending.get(key)
                if owner is not None:
                    owner[1].append(index)
                    hit_flags[index] = True
                    continue
                pending[key] = (index, [])
            fresh.append(index)
        if fresh:
            self._materialize_sessions([sessions[index] for index in fresh])
            plans: list[_AnswerPlan] = []
            approx_plans: list[_AnswerPlan] = []
            for index in fresh:
                session = sessions[index]
                plan = _AnswerPlan(
                    allocation=allocations[index],
                    session=session,
                    exact=int(session.covering_positions.size) < self.n_min,
                    needed_positions=session.covering_positions,
                )
                plans.append(plan)
                if not plan.exact:
                    approx_plans.append(plan)
            if approx_plans:
                self._select_clusters(approx_plans, budget.epsilon_sampling)
            values_list = self._needed_values(plans)
            delta_values, delta_scanned = self._delta_contributions(plans)
            answers = self._assemble_answers(
                plans, values_list, budget, use_smc, delta_values, delta_scanned
            )
            for index, answer in zip(fresh, answers):
                results[index] = answer
                if use_cache:
                    key = keys[index]
                    cache.put(
                        key,
                        (answer.message, answer.report),
                        epoch=self._layout_epoch,
                        epsilon=budget.epsilon_sampling + budget.epsilon_estimation,
                    )
                    for aliased in pending[key][1]:
                        results[aliased] = LocalAnswer(
                            message=replace(
                                answer.message,
                                query_id=allocations[aliased].query_id,
                            ),
                            report=answer.report,
                        )
        if reuse_out is not None:
            reuse_out.extend(hit_flags)
        if any(result is None for result in results):
            raise ProtocolError(
                "internal error: a query of the batch produced no local answer"
            )
        return results

    def _materialize_sessions(self, sessions: Sequence[_QuerySession]) -> None:
        """Fill the covering sets/proportions of lazily opened sessions.

        The one vectorised metadata pass shared by both protocol steps: the
        summary phase materialises its fresh (cache-missing) queries here,
        and the answer phase calls it again for sessions whose summary was
        a cache hit but whose answer needs a fresh release.
        """
        lazy = [session for session in sessions if session.covering_positions is None]
        if not lazy:
            return
        ranges_list = [session.query.range_tuples() for session in lazy]
        positions_list = self.metadata.covering_positions_batch(ranges_list)
        proportions_list = self.metadata.proportions_at_positions_batch(
            positions_list, ranges_list
        )
        for session, positions, proportions in zip(lazy, positions_list, proportions_list):
            session.covering_positions = positions
            session.proportions = proportions
            session.proportions_sum = (
                float(proportions.sum()) if positions.size else 0.0
            )

    def _select_clusters(
        self, plans: Sequence[_AnswerPlan], epsilon_sampling: float
    ) -> None:
        """Algorithm-2 DP cluster sampling for every approximating query.

        The pps probabilities (with the uniform fallback and probability
        floor) and the Exponential-Mechanism selection distributions of all
        queries are computed on one flattened array — per-query reductions
        operate on contiguous slices, so the distributions are bit-identical
        for any batching of the same queries.  The actual selections are then
        drawn per query from that query's own session stream (inverse-CDF
        sampling), preserving the sequential draw order.  The scalar
        reference for the distribution math is
        :meth:`repro.sampling.em_sampler.EMClusterSampler.selection_distribution`,
        and a regression test pins the two against each other.
        """
        proportions_list = [plan.session.proportions for plan in plans]
        lengths = np.array([p.size for p in proportions_list], dtype=np.int64)
        boundaries = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=boundaries[1:])
        flat = np.concatenate(proportions_list)
        sizes = np.array(
            [
                max(1, min(plan.allocation.sample_size, int(length)))
                for plan, length in zip(plans, lengths)
            ],
            dtype=np.int64,
        )
        totals = np.array([plan.session.proportions_sum for plan in plans])
        pps = flat / np.repeat(np.where(totals > 0.0, totals, 1.0), lengths)
        for i in np.flatnonzero(totals <= 0.0):
            # Uniform fallback: the metadata approximation found no matching
            # rows in any covering cluster.
            pps[boundaries[i] : boundaries[i + 1]] = 1.0 / float(lengths[i])
        pps = np.maximum(pps, 1e-12)
        # Segmented reductions over the whole batch × cluster matrix in
        # single ufunc calls (every segment is non-empty: approximating
        # queries have >= n_min >= 1 covering clusters).  reduceat sums a
        # segment left to right, so each query's reduction depends only on
        # its own contiguous slice — bit-identical for any batching.
        segment_starts = boundaries[:-1]
        pps_sums = np.add.reduceat(pps, segment_starts)
        pps = pps / np.repeat(pps_sums, lengths)
        delta_p = sampling_probability_sensitivity(self.n_min)
        exponents = pps * np.repeat(epsilon_sampling / sizes, lengths) / (2.0 * delta_p)
        maxima = np.maximum.reduceat(exponents, segment_starts)
        exponents -= np.repeat(maxima, lengths)
        weights = np.exp(exponents)
        weight_sums = np.add.reduceat(weights, segment_starts)
        selection = weights / np.repeat(weight_sums, lengths)
        for i, plan in enumerate(plans):
            plan.selection = selection[boundaries[i] : boundaries[i + 1]]
            cdf = np.cumsum(plan.selection)
            draws = plan.session.rng.random(int(sizes[i])) * cdf[-1]
            plan.selected = np.minimum(
                np.searchsorted(cdf, draws, side="right"), int(lengths[i]) - 1
            )
            plan.sample_size = int(sizes[i])
            plan.needed_positions = plan.session.covering_positions[plan.selected]
            plan.unique_positions = np.unique(plan.needed_positions)

    def _delta_contributions(
        self, plans: Sequence[_AnswerPlan]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact delta-store sums for every plan, at its pinned watermark.

        Plans pinned at watermark zero take no delta work at all (the fast
        path keeps a delta-free provider bit-identical to the pre-ingest
        engine); the rest read exactly their snapshot's prefix of the
        append buffer through the dense mask kernel.
        """
        if not any(plan.session.delta_watermark for plan in plans):
            zeros = np.zeros(len(plans), dtype=np.int64)
            return zeros, zeros.copy()
        return self.delta.query_values(
            [plan.session.query for plan in plans],
            [plan.session.delta_watermark for plan in plans],
        )

    def _needed_values(self, plans: Sequence[_AnswerPlan]) -> list[np.ndarray]:
        """Exact ``Q(C)`` per plan, aligned with each plan's needed positions.

        One boolean-mask + segmented-reduction pass over exactly the rows of
        the (query, needed-cluster) pairs serves every query of the batch; a
        batch of one touches exactly the clusters the per-cluster loop would
        have scanned, and a batch of many shares the single vectorised pass.
        """
        batch = QueryBatch(tuple(plan.session.query for plan in plans))
        positions_per_query = [
            plan.needed_positions if plan.exact else plan.unique_positions
            for plan in plans
        ]
        values_list = self.clustered.layout().query_cluster_values(
            batch, positions_per_query, execution=self.execution_config
        )
        values: list[np.ndarray] = []
        for plan, unique_values in zip(plans, values_list):
            if plan.exact or plan.needed_positions.size == 0:
                values.append(unique_values)
                continue
            # Map the with-replacement selection order back onto the unique
            # cluster values (unique_positions is sorted by construction).
            indices = np.searchsorted(plan.unique_positions, plan.needed_positions)
            values.append(unique_values[indices])
        return values

    def _assemble_answers(
        self,
        plans: Sequence[_AnswerPlan],
        values_list: Sequence[np.ndarray],
        budget: QueryBudget,
        use_smc: bool,
        delta_values: np.ndarray,
        delta_scanned: np.ndarray,
    ) -> list[LocalAnswer]:
        """Build every query's local answer, flattening the estimator math.

        The Hansen-Hurwitz terms ``Q(C)/p`` and the Theorem-5.4 smooth
        sensitivities of all approximating queries are computed on one
        flattened array; per-query reductions use contiguous slices so the
        results are bit-identical for any batching.  Noise draws happen per
        query from that query's session stream, in allocation order.

        ``delta_values`` is each plan's exact sum over its pinned delta
        snapshot; it is added to the estimate *before* the noise draw, and
        — for approximating queries whose snapshot is non-empty — the
        smooth sensitivity is floored at 1, since one delta individual
        changes the exact component by exactly 1 (the constant bound 1 is
        trivially beta-smooth, so ``max(smooth, 1)`` remains a valid smooth
        upper bound of the combined release; the exact path already uses
        global sensitivity 1).  A watermark-zero plan is untouched bit for
        bit.
        """
        results: list[LocalAnswer | None] = [None] * len(plans)
        approx = [
            (index, plan) for index, plan in enumerate(plans) if not plan.exact
        ]
        if approx:
            lengths = np.array([plan.selected.size for _, plan in approx], dtype=np.int64)
            boundaries = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=boundaries[1:])
            flat_values = np.concatenate(
                [values_list[index] for index, _ in approx]
            ).astype(float)
            # Hansen-Hurwitz weights must match the distribution the clusters
            # were actually drawn from (the DP selection distribution),
            # otherwise near-zero approximate proportions blow the estimate
            # up; see the estimator-consistency note in DESIGN.md.
            flat_weights = np.concatenate(
                [plan.selection[plan.selected] for _, plan in approx]
            )
            flat_ratios = flat_values / flat_weights
            # A selected cluster holding matching rows has a true proportion
            # of at least one row over S; flooring the approximate R̂ there
            # keeps the scenario-1 local sensitivity finite when the
            # independence approximation returned zero.
            flat_proportions = np.maximum(
                np.concatenate(
                    [plan.session.proportions[plan.selected] for _, plan in approx]
                ),
                1.0 / self.cluster_size,
            )
            dr_values = np.array(
                [
                    delta_r(self.cluster_size, plan.session.query.num_dimensions)
                    for _, plan in approx
                ]
            )
            proportion_sums = np.array(
                [plan.session.proportions_sum for _, plan in approx]
            )
            flat_smooth = estimator_smooth_sensitivities(
                flat_values,
                flat_proportions,
                flat_weights,
                sum_proportions=np.repeat(proportion_sums, lengths),
                delta_r_value=np.repeat(dr_values, lengths),
                epsilon=budget.epsilon_estimation,
                delta=budget.delta,
            )
            # Hansen-Hurwitz means and smooth-sensitivity means of every
            # approximating query in two segmented reductions (segments are
            # the per-query selected-cluster runs, all non-empty).
            segment_starts = boundaries[:-1]
            ratio_sums = np.add.reduceat(flat_ratios, segment_starts)
            smooth_sums = np.add.reduceat(flat_smooth, segment_starts)
            layout_rows = self.clustered.layout().cluster_rows
            for slot, (index, plan) in enumerate(approx):
                size = int(lengths[slot])
                watermark = plan.session.delta_watermark
                estimate = float(ratio_sums[slot] / size) + float(
                    delta_values[index]
                )
                smooth = float(smooth_sums[slot] / size)
                if watermark:
                    smooth = max(smooth, 1.0)
                noise = 0.0
                if not use_smc:
                    # Lap(2 * S_LS / eps_E) — Algorithm 3, line 10.
                    scale = 2.0 * smooth / budget.epsilon_estimation
                    noise = float(plan.session.rng.laplace(0.0, scale))
                rows_scanned = int(layout_rows[plan.unique_positions].sum()) + int(
                    delta_scanned[index]
                )
                report = ProviderReport(
                    provider_id=self.provider_id,
                    covering_clusters=int(plan.session.covering_positions.size),
                    allocation=plan.allocation.sample_size,
                    sampled_clusters=int(plan.unique_positions.size),
                    approximated=True,
                    local_estimate=estimate,
                    local_noise=noise,
                    smooth_sensitivity=smooth,
                    rows_scanned=rows_scanned,
                    rows_available=self.clustered.num_rows + watermark,
                )
                message = EstimateMessage(
                    query_id=plan.allocation.query_id,
                    provider_id=self.provider_id,
                    value=estimate + noise,
                    smooth_sensitivity=smooth,
                    approximated=True,
                )
                results[index] = LocalAnswer(message=message, report=report)
        for index, plan in enumerate(plans):
            if plan.exact:
                results[index] = self._build_exact_answer(
                    plan,
                    values_list[index],
                    budget,
                    use_smc,
                    int(delta_values[index]),
                    int(delta_scanned[index]),
                )
        if any(answer is None for answer in results):
            raise ProtocolError(
                "internal error: a query of the batch produced no local answer"
            )
        return results

    def _build_exact_answer(
        self,
        plan: _AnswerPlan,
        values: np.ndarray,
        budget: QueryBudget,
        use_smc: bool,
        delta_value: int = 0,
        delta_scanned: int = 0,
    ) -> LocalAnswer:
        allocation = plan.allocation
        layout = self.clustered.layout()
        exact = int(values.sum()) + delta_value
        rows_scanned = int(layout.cluster_rows[plan.needed_positions].sum()) + delta_scanned
        # Adding or removing one individual changes COUNT(*) / SUM(Measure)
        # by at most 1, so the exact path uses global sensitivity 1.
        sensitivity = 1.0
        noise = 0.0
        if not use_smc:
            mechanism = LaplaceMechanism(
                epsilon=budget.epsilon_estimation,
                sensitivity=sensitivity,
                rng=plan.session.rng,
            )
            noise = float(mechanism.sample_noise())
        report = ProviderReport(
            provider_id=self.provider_id,
            covering_clusters=int(plan.needed_positions.size),
            allocation=allocation.sample_size,
            sampled_clusters=int(plan.needed_positions.size),
            approximated=False,
            local_estimate=float(exact),
            local_noise=noise,
            smooth_sensitivity=sensitivity,
            rows_scanned=rows_scanned,
            rows_available=self.clustered.num_rows + plan.session.delta_watermark,
            exact_local_answer=exact,
        )
        message = EstimateMessage(
            query_id=allocation.query_id,
            provider_id=self.provider_id,
            value=float(exact) + noise,
            smooth_sensitivity=sensitivity,
            approximated=False,
        )
        return LocalAnswer(message=message, report=report)

    # -- baseline --------------------------------------------------------------

    def exact_answer(self, query: RangeQuery) -> ExactExecution:
        """Plain-text exact execution over this provider's covering clusters."""
        return self.exact_answer_batch([query])[0]

    def exact_answer_batch(
        self, queries: Sequence[RangeQuery]
    ) -> list[ExactExecution]:
        """Plain-text exact execution of a workload in one vectorised pass.

        Includes the delta store at its *current* watermark: the exact
        baseline always reflects every row the provider holds right now,
        clustered or not.
        """
        schema = self.clustered.schema
        clipped = [query.clipped_to(schema) for query in queries]
        executions = self._executor.execute_batch(clipped)
        watermark = self.delta.watermark
        if not watermark:
            return executions
        values, scanned = self.delta.query_values(clipped, [watermark] * len(clipped))
        return [
            ExactExecution(
                value=execution.value + int(values[index]),
                clusters_scanned=execution.clusters_scanned,
                rows_scanned=execution.rows_scanned + int(scanned[index]),
            )
            for index, execution in enumerate(executions)
        ]

    def forget(self, query_id: int) -> None:
        """Drop the per-query session state (idempotent)."""
        self._sessions.pop(query_id, None)

    def forget_batch(self, query_ids: Sequence[int]) -> None:
        """Drop the session state of every listed query (idempotent)."""
        for query_id in query_ids:
            self._sessions.pop(query_id, None)
