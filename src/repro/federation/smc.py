"""Simulated secure multiparty computation (additive secret sharing).

The paper uses SMC (MPyC) in two places:

* the expensive strawman of Figure 1 — providers secret-share *rows* and the
  query is evaluated on shares, and
* the cheap option of Algorithm 3, line 8 — providers secret-share only their
  local estimate and smooth sensitivity; the aggregator obliviously sums the
  estimates, takes the maximum sensitivity, and injects a single Laplace
  noise before releasing the result.

This module implements the sharing semantics for real (not just the cost):
values are fixed-point encoded into a 61-bit prime field, split into
uniformly random additive shares (one per party), and reconstruction sums the
shares modulo the prime.  A calibrated cost model charges per-share,
per-reconstruction, per-addition and per-comparison simulated time so that
the row-sharing vs result-sharing asymmetry of Figure 1 is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..config import SMCConfig
from ..errors import SMCError
from ..utils.rng import RngLike, ensure_rng

__all__ = ["SecretShares", "SMCSimulator", "SMCCostReport"]


@dataclass(frozen=True)
class SecretShares:
    """Additive shares of one field element, one share per party."""

    shares: tuple[int, ...]
    prime: int

    def __post_init__(self) -> None:
        if len(self.shares) < 2:
            raise SMCError("secret sharing requires at least two parties")
        if any(not 0 <= share < self.prime for share in self.shares):
            raise SMCError("every share must lie in [0, prime)")

    @property
    def num_parties(self) -> int:
        """Number of parties holding a share."""
        return len(self.shares)


@dataclass
class SMCCostReport:
    """Simulated cost counters accumulated by an :class:`SMCSimulator`."""

    operations: int = 0
    simulated_seconds: float = 0.0
    bytes_exchanged: int = 0


@dataclass
class SMCSimulator:
    """Additive secret sharing over a prime field with a cost model."""

    config: SMCConfig = field(default_factory=SMCConfig)
    num_parties: int = 4
    rng: RngLike = None
    cost: SMCCostReport = field(default_factory=SMCCostReport)

    def __post_init__(self) -> None:
        if self.num_parties < 2:
            raise SMCError(f"num_parties must be >= 2, got {self.num_parties}")
        self._generator = ensure_rng(self.rng)
        # A Mersenne prime close to 2**field_bits keeps arithmetic exact in
        # Python integers while matching the configured field width.
        self._prime = (1 << self.config.field_bits) - 1
        self._scale = 1 << self.config.fixed_point_fraction_bits

    # -- encoding ----------------------------------------------------------

    @property
    def prime(self) -> int:
        """The prime modulus of the share field."""
        return self._prime

    def _encode(self, value: float) -> int:
        scaled = int(round(value * self._scale))
        if abs(scaled) >= self._prime // 2:
            raise SMCError(f"value {value} overflows the fixed-point field")
        return scaled % self._prime

    def _decode(self, element: int) -> float:
        centered = element if element <= self._prime // 2 else element - self._prime
        return centered / self._scale

    # -- sharing -----------------------------------------------------------

    def share(self, value: float) -> SecretShares:
        """Split ``value`` into additive shares (one per party)."""
        encoded = self._encode(value)
        random_shares = [
            int(self._generator.integers(0, self._prime)) for _ in range(self.num_parties - 1)
        ]
        last = (encoded - sum(random_shares)) % self._prime
        self._charge(
            seconds=self.config.share_cost_seconds,
            payload_bytes=self.config.bytes_per_share * self.num_parties,
        )
        return SecretShares(shares=tuple(random_shares + [last]), prime=self._prime)

    def reconstruct(self, shares: SecretShares) -> float:
        """Reconstruct the plaintext value from its shares."""
        if shares.prime != self._prime:
            raise SMCError("shares were produced under a different field")
        total = sum(shares.shares) % self._prime
        self._charge(
            seconds=self.config.reconstruct_cost_seconds,
            payload_bytes=self.config.bytes_per_share * shares.num_parties,
        )
        return self._decode(total)

    # -- secure operations ---------------------------------------------------

    def secure_sum(self, shared_values: Sequence[SecretShares]) -> SecretShares:
        """Sum of several shared values, computed share-wise (no interaction)."""
        if not shared_values:
            raise SMCError("secure_sum requires at least one shared value")
        for shared in shared_values:
            if shared.num_parties != self.num_parties or shared.prime != self._prime:
                raise SMCError("all shared values must match this simulator's parties/field")
        summed = [0] * self.num_parties
        for shared in shared_values:
            for i, share in enumerate(shared.shares):
                summed[i] = (summed[i] + share) % self._prime
            self._charge(seconds=self.config.secure_addition_cost_seconds, payload_bytes=0)
        return SecretShares(shares=tuple(summed), prime=self._prime)

    def secure_max(self, shared_values: Sequence[SecretShares]) -> float:
        """Maximum of several shared values via pairwise secure comparisons.

        Comparisons under additive sharing are interactive; we charge the
        per-comparison cost and reconstruct only the winning value, which is
        the piece of information the protocol actually releases (the noise
        scale).
        """
        if not shared_values:
            raise SMCError("secure_max requires at least one shared value")
        values = [self.reconstruct(shared) for shared in shared_values]
        comparisons = max(0, len(values) - 1)
        self._charge(
            seconds=comparisons * self.config.secure_comparison_cost_seconds,
            payload_bytes=comparisons * self.config.bytes_per_share * self.num_parties,
        )
        return max(values)

    # -- cost model for bulk row sharing (Figure 1 strawman) -----------------

    def row_sharing_cost(self, num_rows: int, num_columns: int) -> float:
        """Simulated cost of secret-sharing an entire table's rows.

        Every cell becomes one shared field element, so the cost scales with
        ``num_rows * num_columns`` — this is the quantity Figure 1 shows
        exploding relative to result sharing.
        """
        if num_rows < 0 or num_columns < 0:
            raise SMCError("num_rows and num_columns must be >= 0")
        cells = num_rows * num_columns
        seconds = cells * self.config.share_cost_seconds
        payload = cells * self.config.bytes_per_share * self.num_parties
        self._charge(seconds=seconds, payload_bytes=payload)
        return seconds

    def result_sharing_cost(self, num_values: int) -> float:
        """Simulated cost of secret-sharing ``num_values`` scalar results."""
        if num_values < 0:
            raise SMCError("num_values must be >= 0")
        seconds = num_values * (
            self.config.share_cost_seconds + self.config.reconstruct_cost_seconds
        )
        payload = num_values * self.config.bytes_per_share * self.num_parties
        self._charge(seconds=seconds, payload_bytes=payload)
        return seconds

    # -- internals -----------------------------------------------------------

    def _charge(self, *, seconds: float, payload_bytes: int) -> None:
        self.cost.operations += 1
        self.cost.simulated_seconds += seconds
        self.cost.bytes_exchanged += payload_bytes
