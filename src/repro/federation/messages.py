"""Typed protocol messages exchanged between the aggregator and providers.

The whole point of the paper's collaboration method is that these messages
are tiny and their size is independent of the data: a query, two noisy
scalars per provider, one integer allocation per provider, and one noisy
estimate per provider.  Each message knows its approximate serialised size so
the simulated network can charge a realistic transfer cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..query.model import RangeQuery

__all__ = [
    "QueryRequest",
    "SummaryMessage",
    "AllocationMessage",
    "EstimateMessage",
    "IngestRequest",
    "IngestAck",
    "ALL_MESSAGE_TYPES",
]

_SCALAR_BYTES = 8
_HEADER_BYTES = 16


@dataclass(frozen=True)
class QueryRequest:
    """Aggregator -> provider: the query and the requested sampling rate.

    ``seed_material`` optionally pins the query's noise stream: when set, the
    provider derives the per-query session RNG from its own stable stream key
    plus this material instead of drawing positionally from its root stream.
    The serving layer (:mod:`repro.service`) uses it to key each query's
    randomness by ``(tenant, tenant-local sequence)`` so answers do not depend
    on how tenants' submissions were coalesced into batches.

    ``trace_context`` carries the submitting span's ``(trace_id, span_id)``
    when tracing is enabled (see :mod:`repro.obs.trace`), so provider-side
    spans — behind a socket transport or inside a process-pool worker —
    land in the same trace as the aggregator's.  It is observability
    metadata, not protocol payload: it stays ``None`` with tracing off and
    is excluded from :meth:`payload_bytes`, so the simulated communication
    accounting is identical with and without tracing.
    """

    query_id: int
    query: RangeQuery
    sampling_rate: float
    seed_material: tuple[int, ...] | None = None
    trace_context: tuple[str, str] | None = None

    def payload_bytes(self) -> int:
        """Approximate serialised size: header + one interval per dimension.

        Seed material is counted one byte per element: the elements are the
        tenant id's UTF-8 bytes plus one small sequence integer.
        """
        return (
            _HEADER_BYTES
            + 2 * _SCALAR_BYTES * self.query.num_dimensions
            + _SCALAR_BYTES
            + len(self.seed_material or ())
        )


@dataclass(frozen=True)
class SummaryMessage:
    """Provider -> aggregator: DP-noised ``N^Q`` and ``Avg(R̂)`` (Equation 5)."""

    query_id: int
    provider_id: str
    noisy_cluster_count: float
    noisy_avg_proportion: float

    def payload_bytes(self) -> int:
        """Two noisy scalars plus a header."""
        return _HEADER_BYTES + 2 * _SCALAR_BYTES


@dataclass(frozen=True)
class AllocationMessage:
    """Aggregator -> provider: the sample size granted to the provider."""

    query_id: int
    provider_id: str
    sample_size: int

    def payload_bytes(self) -> int:
        """One integer plus a header."""
        return _HEADER_BYTES + _SCALAR_BYTES


@dataclass(frozen=True)
class EstimateMessage:
    """Provider -> aggregator: the (noised or to-be-noised) local estimate.

    In the plain-DP configuration ``value`` already includes the provider's
    own Laplace noise and ``smooth_sensitivity`` is informational.  In the
    SMC configuration the value and the sensitivity are secret-shared instead
    of sent in the clear; this message then carries only the share destined
    to the aggregator and has the same size.
    """

    query_id: int
    provider_id: str
    value: float
    smooth_sensitivity: float
    approximated: bool

    def payload_bytes(self) -> int:
        """Two scalars, one flag, and a header."""
        return _HEADER_BYTES + 2 * _SCALAR_BYTES + 1


@dataclass(frozen=True)
class IngestRequest:
    """Ingest source -> provider: a batch of appended rows.

    Unlike the query-path messages, ingest payloads scale with the data:
    one scalar per cell crosses the (simulated) wire.  The simulated
    network accounts them under the separate ``"ingest"`` traffic class so
    Figure-1-style communication accounting of the query protocol stays
    honest when ingestion runs alongside it.
    """

    provider_id: str
    num_rows: int
    num_columns: int

    def payload_bytes(self) -> int:
        """Header plus one scalar per (row, column) cell."""
        return _HEADER_BYTES + _SCALAR_BYTES * self.num_rows * self.num_columns


@dataclass(frozen=True)
class IngestAck:
    """Provider -> ingest source: the post-append snapshot coordinates."""

    provider_id: str
    delta_watermark: int
    layout_epoch: int
    compacted: bool

    def payload_bytes(self) -> int:
        """Two scalars, one flag, and a header."""
        return _HEADER_BYTES + 2 * _SCALAR_BYTES + 1


ALL_MESSAGE_TYPES = (
    QueryRequest,
    SummaryMessage,
    AllocationMessage,
    EstimateMessage,
    IngestRequest,
    IngestAck,
)
"""Every protocol message class, in protocol order.

The wire codec (:mod:`repro.federation.transport`) must round-trip each of
these losslessly; the transport test suite iterates this tuple so a new
message class cannot be added without a round-trip property test."""
