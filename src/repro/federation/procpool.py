"""Process-parallel provider fan-out over shared-memory column buffers.

The thread backend of :class:`~repro.config.ParallelismConfig` overlaps the
per-provider batch phases inside one process; numpy releases the GIL inside
its kernels but the Python glue between them still serialises, which caps
multi-provider scaling.  The ``"process"`` backend lifts that ceiling by
hosting each provider in a persistent worker process:

* at pool construction every provider's **table columns are exported once**
  into :mod:`multiprocessing.shared_memory` blocks.  The worker attaches the
  same blocks and rebuilds its clustered table, metadata, and layout from
  them — the raw rows are never pickled and exist once in memory;
* per batch, only the compact protocol messages (requests, allocations,
  summaries, estimates) cross the process boundary, so the fan-out is
  zero-copy with respect to the data;
* **pending delta rows ship zero-copy too**: each provider owns a growable
  shared-memory append buffer (one ``(columns, capacity)`` int64 matrix —
  every table column is normalised to contiguous int64, so one block fits
  all).  The parent writes appended rows into the buffer and sends only a
  tiny ``(buffer name, capacity, row range)`` descriptor; the worker maps
  the block once and appends zero-copy column *views* to its mirror delta
  store.  No delta row is ever pickled — neither at pool construction nor
  per ingest batch — which :class:`ProcPoolStats` makes assertable;
* each worker's provider draws from the same RNG stream the in-process
  provider would have drawn from (the parent's generator state is shipped at
  construction and synchronised back after every stateful call), so
  process-parallel execution is **bit-identical** to sequential and thread
  execution under the same seed.

Per-query protocol state (the summary→answer sessions) lives in the worker,
which is why all stateful provider calls — summaries, answers, forgets —
must route through the pool while it is active; the parent provider objects
stay valid for stateless reads (exact baselines, metadata sizes).  Release
caches likewise live worker-side: hits still happen and reuse flags (and
therefore per-query charges) are reported, but the parent-side
:meth:`cache.stats` of a process-backed federation stays empty and the
:class:`~repro.cache.planner.ReusePlanner`'s pre-execution admission bound
cannot see worker-side entries — it stays at the (sound, conservative)
full price, so a nearly exhausted budget may refuse a batch the thread
backend would have admitted as fully cached.

**Failure handling** comes in two regimes.  With
:class:`~repro.config.ResilienceConfig` disabled (the default), a dead
worker makes the pool tear itself down — every shared block is unlinked —
and raise :class:`~repro.errors.ProtocolError`; the owning aggregator
rebuilds the pool on the next batch.  With resilience enabled, the pool
degrades instead: per-reply timeouts flag hung workers, a dead worker is
killed and **respawned from the provider's existing shared-memory blocks**
(the table export is never repeated), the respawned worker is seeded with
the RNG checkpoint taken at the summary phase's entry and replays the
batch's summary command so its per-query sessions and noise draws are
bit-identical to the lost worker's, and calls that keep failing are
reported per provider instead of failing the batch.  Scripted faults
(:class:`~repro.testing.faults.FaultInjector`) are consumed parent-side:
workers only ever see a tiny ``("chaos", ...)`` directive ahead of a real
command.

The pool must be closed (:meth:`ProviderProcessPool.close`, or via the
owning aggregator/system ``close()`` / context manager) to terminate the
workers and unlink the shared-memory blocks.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ..errors import ProtocolError
from ..storage.layout import KernelTelemetry, merge_active_telemetry, telemetry_active

__all__ = ["ProviderProcessPool", "ProcPoolStats"]

_RESPAWN_READY_TIMEOUT = 60.0
"""Seconds a respawn waits for the new worker's ready/replay replies."""


@dataclass(frozen=True)
class _ColumnSpec:
    """One shared-memory-backed table column."""

    name: str
    shm_name: str
    dtype: str
    length: int


@dataclass(frozen=True)
class _DeltaBufferSpec:
    """Descriptor of one provider's shared delta buffer (or a slice of it)."""

    shm_name: str
    capacity: int
    rows: int


@dataclass
class ProcPoolStats:
    """Pool instrumentation (parent-side, cumulative).

    ``delta_rows_pickled_bytes`` counts bytes of delta-row payloads (tables)
    serialised over the worker pipes — zero by construction on the
    shared-buffer path; the counter exists so a regression reintroducing
    pickled row shipping is caught by tests rather than by a profiler.

    The resilience counters (``workers_respawned`` / ``worker_timeouts`` /
    ``provider_retries`` / ``provider_failures``) stay zero outside
    degraded chaos runs.
    """

    delta_rows_shipped: int = 0
    delta_shared_bytes: int = 0
    delta_rows_pickled_bytes: int = 0
    workers_respawned: int = 0
    worker_timeouts: int = 0
    provider_retries: int = 0
    provider_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form (for metric snapshots and benchmark records)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


def _charge_pickled_rows(stats: ProcPoolStats, command: tuple) -> None:
    """Charge any table-like payload in ``command`` to the pickled counter."""
    for element in command:
        if hasattr(element, "schema") and hasattr(element, "memory_bytes"):
            stats.delta_rows_pickled_bytes += int(element.memory_bytes())


class _SharedDeltaBuffer:
    """Parent-side growable shared-memory append buffer of delta rows.

    One int64 matrix of shape ``(num_columns, capacity)`` per provider
    (every :class:`~repro.storage.table.Table` column is contiguous int64 by
    construction).  Growth allocates a doubled block and copies the live
    prefix; the outgrown block is unlinked immediately — workers attached it
    before any later message could reference the new one (the ingest
    round-trip is synchronous), and POSIX keeps existing mappings valid
    after an unlink, so worker-held chunk views stay readable.
    """

    def __init__(self, column_names: Sequence[str], initial_rows: int = 0) -> None:
        self._column_names = tuple(column_names)
        capacity = 1024
        while capacity < initial_rows:
            capacity *= 2
        self._capacity = capacity
        self._rows = 0
        self._block, self._matrix = self._allocate(capacity)

    def _allocate(self, capacity: int) -> tuple[shared_memory.SharedMemory, np.ndarray]:
        num_columns = max(1, len(self._column_names))
        block = shared_memory.SharedMemory(
            create=True, size=max(1, num_columns * capacity * 8)
        )
        matrix = np.ndarray(
            (len(self._column_names), capacity), dtype=np.int64, buffer=block.buf
        )
        return block, matrix

    @property
    def row_bytes(self) -> int:
        """Shared bytes one appended row occupies."""
        return len(self._column_names) * 8

    def append(self, rows) -> tuple[int, int]:
        """Write a table's rows into the buffer; return their ``[start, stop)``."""
        count = rows.num_rows
        if self._rows + count > self._capacity:
            capacity = self._capacity
            while capacity < self._rows + count:
                capacity *= 2
            block, matrix = self._allocate(capacity)
            matrix[:, : self._rows] = self._matrix[:, : self._rows]
            old = self._block
            self._block, self._matrix, self._capacity = block, matrix, capacity
            old.close()
            try:
                old.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        start = self._rows
        for index, name in enumerate(self._column_names):
            self._matrix[index, start : start + count] = rows.column(name)
        self._rows += count
        return start, self._rows

    def spec(self) -> _DeltaBufferSpec:
        """Current descriptor (name, capacity, populated row count)."""
        return _DeltaBufferSpec(
            shm_name=self._block.name, capacity=self._capacity, rows=self._rows
        )

    def close(self) -> None:
        """Release and unlink the live block (idempotent)."""
        if self._block is None:
            return
        try:
            self._block.close()
            self._block.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._block = None


@dataclass(frozen=True)
class _ProviderSpec:
    """Everything a worker needs to rebuild one provider, minus the rows."""

    provider_id: str
    cluster_size: int
    n_min: int
    clustering_policy: str
    sort_by: str | None
    intra_sort_by: str | None
    cache_config: object
    execution_config: object
    ingest_config: object
    schema: object
    columns: tuple[_ColumnSpec, ...]
    rng_state: dict
    stream_entropy: tuple[int, ...]
    delta: _DeltaBufferSpec  # pending (uncompacted) rows live in shm, not here


def _export_table(table) -> tuple[tuple[_ColumnSpec, ...], list[shared_memory.SharedMemory]]:
    """Copy a table's columns into fresh shared-memory blocks (parent side)."""
    specs: list[_ColumnSpec] = []
    blocks: list[shared_memory.SharedMemory] = []
    for name in table.schema.column_names:
        array = table.column(name)
        block = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[:] = array
        specs.append(
            _ColumnSpec(
                name=name,
                shm_name=block.name,
                dtype=array.dtype.str,
                length=int(array.size),
            )
        )
        blocks.append(block)
    return tuple(specs), blocks


def _attach_table(schema, specs: Sequence[_ColumnSpec]):
    """Rebuild a table over the parent's shared blocks (worker side)."""
    from ..storage.table import Table

    blocks: list[shared_memory.SharedMemory] = []
    columns: dict[str, np.ndarray] = {}
    for spec in specs:
        # Attaching re-registers the name with the (shared) resource
        # tracker; registration is a set-add, and only the creating parent
        # unregisters at unlink time, so the bookkeeping stays balanced.
        block = shared_memory.SharedMemory(name=spec.shm_name)
        blocks.append(block)
        columns[spec.name] = np.ndarray(
            (spec.length,), dtype=np.dtype(spec.dtype), buffer=block.buf
        )
    # Table normalisation keeps already-contiguous int64 arrays as-is, so the
    # columns remain views over the shared blocks — no copy.
    return Table(schema, columns), blocks


class _WorkerDeltaView:
    """Worker-side window onto one provider's shared delta buffer.

    Caches the attached block per buffer name; a grown buffer (new name)
    is attached on first reference while the outgrown block stays mapped —
    the provider's delta chunks hold zero-copy views into it.
    """

    def __init__(self, schema, blocks: list) -> None:
        self._schema = schema
        self._names = schema.column_names
        self._blocks = blocks  # the worker's shared close-at-exit registry
        self._shm_name: str | None = None
        self._matrix: np.ndarray | None = None

    def slice_table(self, spec: _DeltaBufferSpec, start: int, stop: int):
        """Zero-copy table over rows ``[start, stop)`` of the buffer."""
        from ..storage.table import Table

        if spec.shm_name != self._shm_name:
            block = shared_memory.SharedMemory(name=spec.shm_name)
            self._blocks.append(block)
            self._shm_name = spec.shm_name
            self._matrix = np.ndarray(
                (len(self._names), spec.capacity), dtype=np.int64, buffer=block.buf
            )
        # Row slices of an int64 matrix row are contiguous int64 views, which
        # Table normalisation keeps as-is — no copy anywhere on this path.
        return Table(
            self._schema,
            {name: self._matrix[index, start:stop] for index, name in enumerate(self._names)},
        )


def _observed_call(obs: dict, provider, phase: str, call):
    """Run one provider phase under worker-side telemetry/span collection.

    ``obs`` is the parent's observability directive: ``"telemetry"`` asks
    for a :class:`~repro.storage.layout.KernelTelemetry` count dict (the
    parent has a live collector), ``"trace"`` carries the propagated span
    context to parent worker spans under.  Returns ``(extra, result)``
    where ``extra`` is the reply-payload observation dict (or ``None``).
    Collection never touches the provider's draws — results are
    bit-identical with and without it.
    """
    from ..obs.trace import SpanRecorder
    from ..storage.layout import collect_kernel_telemetry

    recorder = SpanRecorder(provider.provider_id)
    telemetry = None
    with recorder.span(
        f"provider.{phase}",
        obs.get("trace"),
        provider=provider.provider_id,
        worker_pid=os.getpid(),
    ):
        if obs.get("telemetry"):
            with collect_kernel_telemetry() as collector:
                result = call()
            telemetry = collector.as_dict()
        else:
            result = call()
    extra: dict = {}
    if telemetry is not None:
        extra["telemetry"] = telemetry
    if recorder.records:
        extra["spans"] = recorder.records
    return (extra or None), result


def _worker_main(conn, provider_specs: Sequence[_ProviderSpec]) -> None:
    """Worker loop: host the assigned providers, serve phase calls over the pipe."""
    from .provider import DataProvider

    blocks: list[shared_memory.SharedMemory] = []
    providers: dict[str, DataProvider] = {}
    delta_views: dict[str, _WorkerDeltaView] = {}
    try:
        for spec in provider_specs:
            table, table_blocks = _attach_table(spec.schema, spec.columns)
            blocks.extend(table_blocks)
            provider = DataProvider(
                provider_id=spec.provider_id,
                table=table,
                cluster_size=spec.cluster_size,
                n_min=spec.n_min,
                clustering_policy=spec.clustering_policy,
                sort_by=spec.sort_by,
                intra_sort_by=spec.intra_sort_by,
                cache_config=spec.cache_config,
                execution_config=spec.execution_config,
                ingest_config=spec.ingest_config,
                rng=0,
            )
            # Adopt the parent provider's exact stream position so the worker
            # draws precisely what the in-process provider would have drawn,
            # and its keyed-stream entropy so seed_material-pinned queries
            # land on identical noise streams in every backend.
            provider._rng.bit_generator.state = spec.rng_state
            provider._stream_entropy = spec.stream_entropy
            view = _WorkerDeltaView(spec.schema, blocks)
            delta_views[spec.provider_id] = view
            if spec.delta.rows:
                # Mirror the parent's uncompacted delta buffer so worker-side
                # snapshots pin the same watermark the parent would have —
                # read zero-copy out of the shared buffer, never pickled.
                # Workers never compact (auto_compact=False): compaction is a
                # parent-side decision whose epoch bump rebuilds this pool.
                provider.ingest_rows(
                    view.slice_table(spec.delta, 0, spec.delta.rows),
                    auto_compact=False,
                )
            providers[spec.provider_id] = provider
        conn.send(("ready", None))
        while True:
            command = conn.recv()
            method = command[0]
            if method == "close":
                break
            if method == "chaos":
                # Scripted fault directive from the parent's FaultInjector —
                # the worker itself never sees the schedule.
                if command[1] == "crash":
                    os._exit(17)
                elif command[1] == "hang":
                    time.sleep(float(command[2]))
                continue
            try:
                provider = providers[command[1]]
                if method == "summary":
                    requests, epsilon = command[2], command[3]
                    obs = command[4] if len(command) > 4 else None
                    reuse: list[bool] = []
                    extra = None
                    if obs:
                        extra, messages = _observed_call(
                            obs,
                            provider,
                            "summary",
                            lambda: provider.prepare_summary_batch(
                                requests, epsilon, reuse_out=reuse
                            ),
                        )
                    else:
                        messages = provider.prepare_summary_batch(
                            requests, epsilon, reuse_out=reuse
                        )
                    payload = (messages, reuse, provider._rng.bit_generator.state)
                    # The base 3-tuple reply is the stable protocol; worker
                    # observations ride behind it only when requested, so the
                    # default path ships byte-identical replies.
                    conn.send(("ok", payload + (extra,) if extra else payload))
                elif method == "answer":
                    allocations, budget, use_smc = command[2], command[3], command[4]
                    obs = command[5] if len(command) > 5 else None
                    reuse = []
                    extra = None
                    if obs:
                        extra, answers = _observed_call(
                            obs,
                            provider,
                            "answer",
                            lambda: provider.answer_batch(
                                allocations, budget, use_smc=use_smc, reuse_out=reuse
                            ),
                        )
                    else:
                        answers = provider.answer_batch(
                            allocations, budget, use_smc=use_smc, reuse_out=reuse
                        )
                    payload = (answers, reuse, provider._rng.bit_generator.state)
                    conn.send(("ok", payload + (extra,) if extra else payload))
                elif method == "ingest":
                    # Append-only: the worker mirrors the parent's buffer so
                    # later phases pin identical watermarks.  The command
                    # carries only a buffer descriptor and a row range — the
                    # rows themselves are read zero-copy out of the shared
                    # delta buffer.  Compaction is never triggered here —
                    # the parent compacts and the resulting epoch bump tears
                    # this pool down.
                    _, _, spec, start, stop = command
                    rows = delta_views[command[1]].slice_table(spec, start, stop)
                    receipt = provider.ingest_rows(rows, auto_compact=False)
                    conn.send(("ok", receipt))
                elif method == "forget":
                    provider.forget_batch(command[2])
                    conn.send(("ok", None))
                else:
                    conn.send(("error", f"unknown worker method {method!r}"))
            except Exception as error:  # noqa: BLE001 - forwarded to the parent
                import traceback

                conn.send(("error", f"{error}\n{traceback.format_exc()}"))
    finally:
        for block in blocks:
            block.close()
        conn.close()


class ProviderProcessPool:
    """Persistent per-provider worker processes behind one aggregator.

    Providers are assigned round-robin to ``parallelism.resolve_workers``
    worker processes (one provider per worker by default).  Calls preserve
    provider order; replies on a shared worker pipe arrive in send order.
    """

    def __init__(self, providers: Sequence, parallelism, *, tracer=None) -> None:
        self._providers = list(providers)
        self._blocks: list[shared_memory.SharedMemory] = []
        self._delta_buffers: list[_SharedDeltaBuffer] = []
        self._conns = []
        self._processes = []
        self._closed = False
        self.stats = ProcPoolStats()
        # Observability: worker span records are absorbed into this tracer
        # (None with observability disabled) and the workers' kernel
        # telemetry accumulates here for the pool's lifetime on top of being
        # folded into any live collect_kernel_telemetry() collector.
        self._tracer = tracer
        self.kernel_telemetry = KernelTelemetry()
        # Respawn state: the per-provider column specs (the shared blocks
        # are parent-owned and outlive any worker), the RNG checkpoints
        # taken at the last summary phase's entry, and that phase's command
        # for session replay on a worker respawned mid-batch.
        self._column_specs: list[tuple[_ColumnSpec, ...]] = []
        self._rng_checkpoints: list[dict] = []
        self._last_summary: tuple | None = None
        # Layout versions the worker snapshots were taken at; the owning
        # aggregator rebuilds the pool when any provider re-clusters.
        self.layout_epochs = tuple(provider.layout_epoch for provider in self._providers)
        context = mp.get_context()
        num_workers = parallelism.resolve_workers(len(self._providers))
        self._worker_of = [index % num_workers for index in range(len(self._providers))]
        specs_per_worker: list[list[_ProviderSpec]] = [[] for _ in range(num_workers)]
        for index, provider in enumerate(self._providers):
            columns, blocks = _export_table(provider.table)
            self._blocks.extend(blocks)
            self._column_specs.append(columns)
            self._rng_checkpoints.append(provider._rng.bit_generator.state)
            delta_buffer = _SharedDeltaBuffer(provider.table.schema.column_names)
            self._delta_buffers.append(delta_buffer)
            if provider.delta.watermark:
                # Pre-populate the shared buffer with the pending
                # (uncompacted) rows instead of pickling them into the spec.
                pending = provider.delta.rows_upto(provider.delta.watermark)
                delta_buffer.append(pending)
                self.stats.delta_rows_shipped += pending.num_rows
                self.stats.delta_shared_bytes += (
                    pending.num_rows * delta_buffer.row_bytes
                )
            specs_per_worker[self._worker_of[index]].append(
                self._build_spec(index, provider._rng.bit_generator.state)
            )
        try:
            for worker_specs in specs_per_worker:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_conn, worker_specs), daemon=True
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._processes.append(process)
            for conn in self._conns:
                status, _ = conn.recv()
                if status != "ready":  # pragma: no cover - defensive
                    raise ProtocolError("provider worker failed to initialise")
        except BaseException:
            self.close()
            raise

    def _build_spec(self, provider_index: int, rng_state: dict) -> _ProviderSpec:
        """Worker rebuild recipe for one provider over its existing blocks."""
        provider = self._providers[provider_index]
        return _ProviderSpec(
            provider_id=provider.provider_id,
            cluster_size=provider.cluster_size,
            n_min=provider.n_min,
            clustering_policy=provider.clustering_policy,
            sort_by=provider.sort_by,
            intra_sort_by=provider.intra_sort_by,
            cache_config=provider.cache_config,
            execution_config=provider.execution_config,
            ingest_config=provider.ingest_config,
            schema=provider.table.schema,
            columns=self._column_specs[provider_index],
            rng_state=rng_state,
            stream_entropy=provider._stream_entropy,
            delta=self._delta_buffers[provider_index].spec(),
        )

    # -- introspection -----------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed pool serves no calls)."""
        return self._closed

    def shared_block_names(self) -> tuple[str, ...]:
        """Names of every live shared-memory block this pool owns.

        Covers the exported table columns and the delta append buffers —
        the leak-regression tests attach by name after a crash to prove
        everything was unlinked.
        """
        names = [block.name for block in self._blocks]
        names.extend(
            buffer._block.name
            for buffer in self._delta_buffers
            if buffer._block is not None
        )
        return tuple(names)

    def live_workers(self) -> int:
        """Number of workers currently reachable over their pipes."""
        return sum(1 for conn in self._conns if conn is not None)

    # -- phase calls -------------------------------------------------------

    def summary_batch(
        self,
        requests,
        epsilon_allocation: float,
        *,
        skip: frozenset[int] = frozenset(),
        injector=None,
        resilience=None,
    ):
        """Run ``prepare_summary_batch`` on every non-skipped provider's worker.

        Returns ``(results, failures)``: per-provider-index dicts of
        ``(messages, reuse)`` payloads and permanent failure reasons.
        Without resilience, failures raise instead (seed behaviour) and the
        failure dict is always empty.
        """
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        degrade = resilience is not None and resilience.enabled
        # Checkpoint every provider's stream position at phase entry: a
        # worker respawned mid-batch restarts from here and replays the
        # summary command, which reproduces the lost worker's draws and
        # sessions bit-for-bit (caches cold — see the module docstring).
        for index, provider in enumerate(self._providers):
            self._rng_checkpoints[index] = provider._rng.bit_generator.state
        self._last_summary = (list(requests), epsilon_allocation)
        if degrade and resilience.respawn_workers:
            # A worker lost in an earlier batch is revived here, from the
            # parent's current (authoritative) stream positions — no replay:
            # a new batch has no sessions yet.
            for worker in sorted(
                {
                    self._worker_of[index]
                    for index in range(len(self._providers))
                    if index not in skip
                }
            ):
                if self._conns[worker] is None:
                    self._respawn_worker(worker)
        obs = self._obs_directive(
            next((request.trace_context for request in requests if request.trace_context), None)
        )
        entries = [
            (index, ("summary", provider.provider_id, requests, epsilon_allocation) + obs)
            for index, provider in enumerate(self._providers)
            if index not in skip
        ]
        return self._call(
            entries, sync_rng=True, phase="summary", injector=injector, resilience=resilience
        )

    def answer_batch(
        self,
        allocations_per_provider,
        budget,
        use_smc: bool,
        *,
        skip: frozenset[int] = frozenset(),
        injector=None,
        resilience=None,
        trace_ctx=None,
    ):
        """Run ``answer_batch`` on every non-skipped provider's worker.

        Same ``(results, failures)`` contract as :meth:`summary_batch`.
        ``trace_ctx`` carries the answer phase's span context (allocation
        messages have no trace field of their own).
        """
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        obs = self._obs_directive(trace_ctx)
        entries = [
            (
                index,
                (
                    "answer",
                    self._providers[index].provider_id,
                    allocations_per_provider[index],
                    budget,
                    use_smc,
                )
                + obs,
            )
            for index in range(len(self._providers))
            if index not in skip
        ]
        return self._call(
            entries, sync_rng=True, phase="answer", injector=injector, resilience=resilience
        )

    def forget_batch(self, query_ids) -> None:
        """Drop the per-query worker sessions (idempotent, best-effort).

        Dead workers hold no sessions to leak and are skipped; a worker
        dying mid-forget is killed (not the whole pool) — the sessions die
        with it.
        """
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        sent: dict[int, int] = {}
        for index, provider in enumerate(self._providers):
            worker = self._worker_of[index]
            conn = self._conns[worker]
            if conn is None:
                continue
            try:
                conn.send(("forget", provider.provider_id, list(query_ids)))
            except (BrokenPipeError, OSError):
                self._kill_worker(worker)
                continue
            sent[worker] = sent.get(worker, 0) + 1
        for worker, expected in sent.items():
            conn = self._conns[worker]
            for _ in range(expected):
                try:
                    conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    self._kill_worker(worker)
                    break

    def ingest(self, provider_index: int, rows) -> None:
        """Mirror an append onto one provider's worker (append-only).

        The parent aggregator routes every ingest here *before* applying it
        to its own provider object, so the two views of the delta buffer
        advance in lockstep and any in-worker session keeps its pinned
        snapshot semantics.

        The rows are written into the provider's shared delta buffer and
        only a ``(descriptor, start, stop)`` triple crosses the pipe —
        zero pickled delta-row bytes per batch.  A worker lost to an
        earlier degraded batch is respawned first (ingest runs between
        batches, so no session replay is needed).
        """
        provider = self._providers[provider_index]
        worker = self._worker_of[provider_index]
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        if self._conns[worker] is None and not self._respawn_worker(worker):
            raise ProtocolError(
                f"provider worker for {provider.provider_id!r} is dead and could "
                "not be respawned"
            )
        buffer = self._delta_buffers[provider_index]
        start, stop = buffer.append(rows)
        self.stats.delta_rows_shipped += rows.num_rows
        self.stats.delta_shared_bytes += rows.num_rows * buffer.row_bytes
        command = ("ingest", provider.provider_id, buffer.spec(), start, stop)
        _charge_pickled_rows(self.stats, command)
        try:
            self._conns[worker].send(command)
            status, payload = self._conns[worker].recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            self.close()
            raise ProtocolError(f"provider worker died: {error!r}") from error
        if status != "ok":
            raise ProtocolError(f"provider worker failed: {payload}")

    def _call(self, entries, *, sync_rng: bool, phase=None, injector=None, resilience=None):
        """Drive one phase over the workers; degrade per provider if allowed.

        ``entries`` is a list of ``(provider_index, command)``.  Returns
        ``(results, failures)`` keyed by provider index.  Without an
        enabled resilience policy this reproduces the seed semantics
        exactly: a worker-level error reply raises after draining every
        reply, a dead worker tears the whole pool down and raises.
        """
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        degrade = resilience is not None and resilience.enabled
        timeout = resilience.provider_timeout_seconds if degrade else None
        max_attempts = 1 + (resilience.max_retries if degrade else 0)
        command_of = {index: command for index, command in entries}
        results: dict[int, object] = {}
        failures: dict[int, str] = {}
        pending = [index for index, _ in entries]
        attempt = 0
        while pending:
            attempt += 1
            transport_error: Exception | None = None
            failed_now: dict[int, str] = {}
            sent: dict[int, list[int]] = {}
            for index in pending:
                worker = self._worker_of[index]
                conn = self._conns[worker]
                if conn is None:
                    failed_now[index] = "worker unavailable"
                    continue
                fault = (
                    injector.take_call_fault(phase, index, attempt)
                    if injector is not None and phase is not None
                    else None
                )
                if fault is not None and fault.kind == "drop_provider":
                    # The provider went offline at the protocol level: the
                    # command is never sent, the worker stays alive.
                    failed_now[index] = "injected provider drop"
                    continue
                if fault is not None and fault.kind == "kill_connection":
                    # Transport sabotage: the pipe dies under the parent,
                    # taking every in-flight command on this worker with it.
                    self._kill_worker(worker)
                    failed_now[index] = "injected connection kill"
                    continue
                try:
                    if fault is not None and fault.kind == "crash_worker":
                        conn.send(("chaos", "crash"))
                    elif fault is not None and fault.kind == "hang_worker":
                        conn.send(("chaos", "hang", fault.hang_seconds))
                    conn.send(command_of[index])
                except (BrokenPipeError, OSError) as error:
                    transport_error = error
                    self._kill_worker(worker)
                    failed_now[index] = f"worker died: {error!r}"
                    continue
                sent.setdefault(worker, []).append(index)
            # Drain every expected reply before deciding anything: leaving
            # queued replies behind would desynchronise the per-connection
            # send/recv pairing and corrupt every later call on the pool.
            for worker, indices in sent.items():
                conn = self._conns[worker]
                worker_down: str | None = None
                for index in indices:
                    if worker_down is not None:
                        failed_now[index] = worker_down
                        continue
                    try:
                        if timeout is not None and not conn.poll(timeout):
                            worker_down = f"provider timed out after {timeout}s"
                            self.stats.worker_timeouts += 1
                            self._kill_worker(worker)
                            failed_now[index] = worker_down
                            continue
                        status, payload = conn.recv()
                    except (EOFError, BrokenPipeError, OSError) as error:
                        transport_error = error
                        worker_down = f"worker died: {error!r}"
                        self._kill_worker(worker)
                        failed_now[index] = worker_down
                        continue
                    if status != "ok":
                        failed_now[index] = f"provider failed: {payload}"
                    elif sync_rng:
                        # Mirror the worker's stream position onto the parent
                        # provider so the two views never diverge — including
                        # for providers that succeeded in a partially failed
                        # attempt, whose workers already consumed their draws.
                        self._providers[index]._rng.bit_generator.state = payload[2]
                        results[index] = (payload[0], payload[1])
                        if len(payload) > 3 and payload[3]:
                            self._absorb_observations(payload[3])
                    else:
                        results[index] = payload
            pending = sorted(failed_now)
            if not pending:
                break
            if not degrade:
                if transport_error is not None:
                    # A worker died (crash, OOM kill): the pipe protocol
                    # cannot be resynchronised without respawn support, so
                    # tear the whole pool down.  The owning aggregator
                    # rebuilds it on the next process-backed batch.
                    self.close()
                    raise ProtocolError(
                        f"provider worker died: {transport_error!r}"
                    ) from transport_error
                details = "; ".join(
                    f"{self._providers[index].provider_id!r}: {failed_now[index]}"
                    for index in pending
                )
                raise ProtocolError(f"provider worker failed: {details}")
            if attempt >= max_attempts:
                self.stats.provider_failures += len(pending)
                failures.update(failed_now)
                break
            self.stats.provider_retries += len(pending)
            if resilience.retry_backoff_seconds > 0:
                time.sleep(resilience.retry_backoff_seconds * (2 ** (attempt - 1)))
            if resilience.respawn_workers:
                # Revive dead workers before the retry.  An answer-phase
                # respawn replays the batch's summary for the retrying
                # providers so their sessions (and draws) are rebuilt
                # bit-identically from the phase-entry RNG checkpoint.
                replay = frozenset(pending) if phase == "answer" else frozenset()
                for worker in sorted({self._worker_of[index] for index in pending}):
                    if self._conns[worker] is None:
                        self._respawn_worker(worker, replay_for=replay)
        return results, failures

    # -- observability -----------------------------------------------------

    def _obs_directive(self, trace_ctx) -> tuple:
        """Extra command element asking workers to observe, or empty.

        Empty whenever neither tracing nor a live telemetry collector
        wants the data — the commands (and replies) then stay exactly the
        seed shapes.
        """
        telemetry = telemetry_active()
        if trace_ctx is None and not telemetry:
            return ()
        return ({"trace": trace_ctx, "telemetry": telemetry},)

    def _absorb_observations(self, extra: dict) -> None:
        """Fold one worker reply's telemetry/spans into parent collectors."""
        counts = extra.get("telemetry")
        if counts:
            merge_active_telemetry(counts)
            self.kernel_telemetry.merge_counts(counts)
        spans = extra.get("spans")
        if spans and self._tracer is not None:
            self._tracer.absorb(spans)

    # -- worker lifecycle --------------------------------------------------

    def _kill_worker(self, worker_index: int) -> None:
        """Sever one worker's pipe and terminate its process (blocks stay)."""
        conn = self._conns[worker_index]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._conns[worker_index] = None
        process = self._processes[worker_index]
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5)

    def _respawn_worker(
        self, worker_index: int, replay_for: frozenset[int] = frozenset()
    ) -> bool:
        """Start a fresh worker over the provider's existing shared blocks.

        The table columns and delta buffers are *not* re-exported — the new
        worker attaches the very same blocks.  Providers in ``replay_for``
        are seeded with the RNG checkpoint taken at the current batch's
        summary entry and the summary command is replayed (output
        discarded) so a subsequent answer retry finds bit-identical
        sessions; all other providers start from the parent's current
        (authoritative) stream position.  Returns ``False`` — leaving the
        worker dead — when the respawn itself fails.
        """
        self._kill_worker(worker_index)
        provider_indices = [
            index
            for index in range(len(self._providers))
            if self._worker_of[index] == worker_index
        ]
        specs = [
            self._build_spec(
                index,
                self._rng_checkpoints[index]
                if index in replay_for
                else self._providers[index]._rng.bit_generator.state,
            )
            for index in provider_indices
        ]
        context = mp.get_context()
        parent_conn = process = None
        try:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, specs), daemon=True
            )
            process.start()
            child_conn.close()
            if not parent_conn.poll(_RESPAWN_READY_TIMEOUT):
                raise ProtocolError("respawned provider worker never became ready")
            status, _ = parent_conn.recv()
            if status != "ready":
                raise ProtocolError("respawned provider worker failed to initialise")
            if replay_for and self._last_summary is not None:
                requests, epsilon = self._last_summary
                for index in provider_indices:
                    if index not in replay_for:
                        continue
                    parent_conn.send(
                        ("summary", self._providers[index].provider_id, requests, epsilon)
                    )
                    if not parent_conn.poll(_RESPAWN_READY_TIMEOUT):
                        raise ProtocolError("summary replay timed out")
                    status, payload = parent_conn.recv()
                    if status != "ok":
                        raise ProtocolError(f"summary replay failed: {payload}")
                    # Replay output is discarded: the original release was
                    # already delivered and accounted before the worker died.
        except Exception:
            if parent_conn is not None:
                try:
                    parent_conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5)
            return False
        self._conns[worker_index] = parent_conn
        self._processes[worker_index] = process
        self.stats.workers_respawned += 1
        return True

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Terminate the workers and unlink every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        for buffer in self._delta_buffers:
            buffer.close()
        self._conns = []
        self._processes = []
        self._blocks = []
        self._delta_buffers = []

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass
