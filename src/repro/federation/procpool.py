"""Process-parallel provider fan-out over shared-memory column buffers.

The thread backend of :class:`~repro.config.ParallelismConfig` overlaps the
per-provider batch phases inside one process; numpy releases the GIL inside
its kernels but the Python glue between them still serialises, which caps
multi-provider scaling.  The ``"process"`` backend lifts that ceiling by
hosting each provider in a persistent worker process:

* at pool construction every provider's **table columns are exported once**
  into :mod:`multiprocessing.shared_memory` blocks.  The worker attaches the
  same blocks and rebuilds its clustered table, metadata, and layout from
  them — the raw rows are never pickled and exist once in memory;
* per batch, only the compact protocol messages (requests, allocations,
  summaries, estimates) cross the process boundary, so the fan-out is
  zero-copy with respect to the data;
* **pending delta rows ship zero-copy too**: each provider owns a growable
  shared-memory append buffer (one ``(columns, capacity)`` int64 matrix —
  every table column is normalised to contiguous int64, so one block fits
  all).  The parent writes appended rows into the buffer and sends only a
  tiny ``(buffer name, capacity, row range)`` descriptor; the worker maps
  the block once and appends zero-copy column *views* to its mirror delta
  store.  No delta row is ever pickled — neither at pool construction nor
  per ingest batch — which :class:`ProcPoolStats` makes assertable;
* each worker's provider draws from the same RNG stream the in-process
  provider would have drawn from (the parent's generator state is shipped at
  construction and synchronised back after every stateful call), so
  process-parallel execution is **bit-identical** to sequential and thread
  execution under the same seed.

Per-query protocol state (the summary→answer sessions) lives in the worker,
which is why all stateful provider calls — summaries, answers, forgets —
must route through the pool while it is active; the parent provider objects
stay valid for stateless reads (exact baselines, metadata sizes).  Release
caches likewise live worker-side: hits still happen and reuse flags (and
therefore per-query charges) are reported, but the parent-side
:meth:`cache.stats` of a process-backed federation stays empty and the
:class:`~repro.cache.planner.ReusePlanner`'s pre-execution admission bound
cannot see worker-side entries — it stays at the (sound, conservative)
full price, so a nearly exhausted budget may refuse a batch the thread
backend would have admitted as fully cached.

The pool must be closed (:meth:`ProviderProcessPool.close`, or via the
owning aggregator/system ``close()`` / context manager) to terminate the
workers and unlink the shared-memory blocks.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ..errors import ProtocolError

__all__ = ["ProviderProcessPool", "ProcPoolStats"]


@dataclass(frozen=True)
class _ColumnSpec:
    """One shared-memory-backed table column."""

    name: str
    shm_name: str
    dtype: str
    length: int


@dataclass(frozen=True)
class _DeltaBufferSpec:
    """Descriptor of one provider's shared delta buffer (or a slice of it)."""

    shm_name: str
    capacity: int
    rows: int


@dataclass
class ProcPoolStats:
    """Ingest-path instrumentation of one pool (parent-side, cumulative).

    ``delta_rows_pickled_bytes`` counts bytes of delta-row payloads (tables)
    serialised over the worker pipes — zero by construction on the
    shared-buffer path; the counter exists so a regression reintroducing
    pickled row shipping is caught by tests rather than by a profiler.
    """

    delta_rows_shipped: int = 0
    delta_shared_bytes: int = 0
    delta_rows_pickled_bytes: int = 0


def _charge_pickled_rows(stats: ProcPoolStats, command: tuple) -> None:
    """Charge any table-like payload in ``command`` to the pickled counter."""
    for element in command:
        if hasattr(element, "schema") and hasattr(element, "memory_bytes"):
            stats.delta_rows_pickled_bytes += int(element.memory_bytes())


class _SharedDeltaBuffer:
    """Parent-side growable shared-memory append buffer of delta rows.

    One int64 matrix of shape ``(num_columns, capacity)`` per provider
    (every :class:`~repro.storage.table.Table` column is contiguous int64 by
    construction).  Growth allocates a doubled block and copies the live
    prefix; the outgrown block is unlinked immediately — workers attached it
    before any later message could reference the new one (the ingest
    round-trip is synchronous), and POSIX keeps existing mappings valid
    after an unlink, so worker-held chunk views stay readable.
    """

    def __init__(self, column_names: Sequence[str], initial_rows: int = 0) -> None:
        self._column_names = tuple(column_names)
        capacity = 1024
        while capacity < initial_rows:
            capacity *= 2
        self._capacity = capacity
        self._rows = 0
        self._block, self._matrix = self._allocate(capacity)

    def _allocate(self, capacity: int) -> tuple[shared_memory.SharedMemory, np.ndarray]:
        num_columns = max(1, len(self._column_names))
        block = shared_memory.SharedMemory(
            create=True, size=max(1, num_columns * capacity * 8)
        )
        matrix = np.ndarray(
            (len(self._column_names), capacity), dtype=np.int64, buffer=block.buf
        )
        return block, matrix

    @property
    def row_bytes(self) -> int:
        """Shared bytes one appended row occupies."""
        return len(self._column_names) * 8

    def append(self, rows) -> tuple[int, int]:
        """Write a table's rows into the buffer; return their ``[start, stop)``."""
        count = rows.num_rows
        if self._rows + count > self._capacity:
            capacity = self._capacity
            while capacity < self._rows + count:
                capacity *= 2
            block, matrix = self._allocate(capacity)
            matrix[:, : self._rows] = self._matrix[:, : self._rows]
            old = self._block
            self._block, self._matrix, self._capacity = block, matrix, capacity
            old.close()
            try:
                old.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        start = self._rows
        for index, name in enumerate(self._column_names):
            self._matrix[index, start : start + count] = rows.column(name)
        self._rows += count
        return start, self._rows

    def spec(self) -> _DeltaBufferSpec:
        """Current descriptor (name, capacity, populated row count)."""
        return _DeltaBufferSpec(
            shm_name=self._block.name, capacity=self._capacity, rows=self._rows
        )

    def close(self) -> None:
        """Release and unlink the live block (idempotent)."""
        if self._block is None:
            return
        try:
            self._block.close()
            self._block.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._block = None


@dataclass(frozen=True)
class _ProviderSpec:
    """Everything a worker needs to rebuild one provider, minus the rows."""

    provider_id: str
    cluster_size: int
    n_min: int
    clustering_policy: str
    sort_by: str | None
    intra_sort_by: str | None
    cache_config: object
    execution_config: object
    ingest_config: object
    schema: object
    columns: tuple[_ColumnSpec, ...]
    rng_state: dict
    stream_entropy: tuple[int, ...]
    delta: _DeltaBufferSpec  # pending (uncompacted) rows live in shm, not here


def _export_table(table) -> tuple[tuple[_ColumnSpec, ...], list[shared_memory.SharedMemory]]:
    """Copy a table's columns into fresh shared-memory blocks (parent side)."""
    specs: list[_ColumnSpec] = []
    blocks: list[shared_memory.SharedMemory] = []
    for name in table.schema.column_names:
        array = table.column(name)
        block = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[:] = array
        specs.append(
            _ColumnSpec(
                name=name,
                shm_name=block.name,
                dtype=array.dtype.str,
                length=int(array.size),
            )
        )
        blocks.append(block)
    return tuple(specs), blocks


def _attach_table(schema, specs: Sequence[_ColumnSpec]):
    """Rebuild a table over the parent's shared blocks (worker side)."""
    from ..storage.table import Table

    blocks: list[shared_memory.SharedMemory] = []
    columns: dict[str, np.ndarray] = {}
    for spec in specs:
        # Attaching re-registers the name with the (shared) resource
        # tracker; registration is a set-add, and only the creating parent
        # unregisters at unlink time, so the bookkeeping stays balanced.
        block = shared_memory.SharedMemory(name=spec.shm_name)
        blocks.append(block)
        columns[spec.name] = np.ndarray(
            (spec.length,), dtype=np.dtype(spec.dtype), buffer=block.buf
        )
    # Table normalisation keeps already-contiguous int64 arrays as-is, so the
    # columns remain views over the shared blocks — no copy.
    return Table(schema, columns), blocks


class _WorkerDeltaView:
    """Worker-side window onto one provider's shared delta buffer.

    Caches the attached block per buffer name; a grown buffer (new name)
    is attached on first reference while the outgrown block stays mapped —
    the provider's delta chunks hold zero-copy views into it.
    """

    def __init__(self, schema, blocks: list) -> None:
        self._schema = schema
        self._names = schema.column_names
        self._blocks = blocks  # the worker's shared close-at-exit registry
        self._shm_name: str | None = None
        self._matrix: np.ndarray | None = None

    def slice_table(self, spec: _DeltaBufferSpec, start: int, stop: int):
        """Zero-copy table over rows ``[start, stop)`` of the buffer."""
        from ..storage.table import Table

        if spec.shm_name != self._shm_name:
            block = shared_memory.SharedMemory(name=spec.shm_name)
            self._blocks.append(block)
            self._shm_name = spec.shm_name
            self._matrix = np.ndarray(
                (len(self._names), spec.capacity), dtype=np.int64, buffer=block.buf
            )
        # Row slices of an int64 matrix row are contiguous int64 views, which
        # Table normalisation keeps as-is — no copy anywhere on this path.
        return Table(
            self._schema,
            {name: self._matrix[index, start:stop] for index, name in enumerate(self._names)},
        )


def _worker_main(conn, provider_specs: Sequence[_ProviderSpec]) -> None:
    """Worker loop: host the assigned providers, serve phase calls over the pipe."""
    from .provider import DataProvider

    blocks: list[shared_memory.SharedMemory] = []
    providers: dict[str, DataProvider] = {}
    delta_views: dict[str, _WorkerDeltaView] = {}
    try:
        for spec in provider_specs:
            table, table_blocks = _attach_table(spec.schema, spec.columns)
            blocks.extend(table_blocks)
            provider = DataProvider(
                provider_id=spec.provider_id,
                table=table,
                cluster_size=spec.cluster_size,
                n_min=spec.n_min,
                clustering_policy=spec.clustering_policy,
                sort_by=spec.sort_by,
                intra_sort_by=spec.intra_sort_by,
                cache_config=spec.cache_config,
                execution_config=spec.execution_config,
                ingest_config=spec.ingest_config,
                rng=0,
            )
            # Adopt the parent provider's exact stream position so the worker
            # draws precisely what the in-process provider would have drawn,
            # and its keyed-stream entropy so seed_material-pinned queries
            # land on identical noise streams in every backend.
            provider._rng.bit_generator.state = spec.rng_state
            provider._stream_entropy = spec.stream_entropy
            view = _WorkerDeltaView(spec.schema, blocks)
            delta_views[spec.provider_id] = view
            if spec.delta.rows:
                # Mirror the parent's uncompacted delta buffer so worker-side
                # snapshots pin the same watermark the parent would have —
                # read zero-copy out of the shared buffer, never pickled.
                # Workers never compact (auto_compact=False): compaction is a
                # parent-side decision whose epoch bump rebuilds this pool.
                provider.ingest_rows(
                    view.slice_table(spec.delta, 0, spec.delta.rows),
                    auto_compact=False,
                )
            providers[spec.provider_id] = provider
        conn.send(("ready", None))
        while True:
            command = conn.recv()
            method = command[0]
            if method == "close":
                break
            try:
                provider = providers[command[1]]
                if method == "summary":
                    _, _, requests, epsilon = command
                    reuse: list[bool] = []
                    messages = provider.prepare_summary_batch(
                        requests, epsilon, reuse_out=reuse
                    )
                    conn.send(
                        ("ok", (messages, reuse, provider._rng.bit_generator.state))
                    )
                elif method == "answer":
                    _, _, allocations, budget, use_smc = command
                    reuse = []
                    answers = provider.answer_batch(
                        allocations, budget, use_smc=use_smc, reuse_out=reuse
                    )
                    conn.send(
                        ("ok", (answers, reuse, provider._rng.bit_generator.state))
                    )
                elif method == "ingest":
                    # Append-only: the worker mirrors the parent's buffer so
                    # later phases pin identical watermarks.  The command
                    # carries only a buffer descriptor and a row range — the
                    # rows themselves are read zero-copy out of the shared
                    # delta buffer.  Compaction is never triggered here —
                    # the parent compacts and the resulting epoch bump tears
                    # this pool down.
                    _, _, spec, start, stop = command
                    rows = delta_views[command[1]].slice_table(spec, start, stop)
                    receipt = provider.ingest_rows(rows, auto_compact=False)
                    conn.send(("ok", receipt))
                elif method == "forget":
                    provider.forget_batch(command[2])
                    conn.send(("ok", None))
                else:
                    conn.send(("error", f"unknown worker method {method!r}"))
            except Exception as error:  # noqa: BLE001 - forwarded to the parent
                import traceback

                conn.send(("error", f"{error}\n{traceback.format_exc()}"))
    finally:
        for block in blocks:
            block.close()
        conn.close()


class ProviderProcessPool:
    """Persistent per-provider worker processes behind one aggregator.

    Providers are assigned round-robin to ``parallelism.resolve_workers``
    worker processes (one provider per worker by default).  Calls preserve
    provider order; replies on a shared worker pipe arrive in send order.
    """

    def __init__(self, providers: Sequence, parallelism) -> None:
        self._providers = list(providers)
        self._blocks: list[shared_memory.SharedMemory] = []
        self._delta_buffers: list[_SharedDeltaBuffer] = []
        self._conns = []
        self._processes = []
        self._closed = False
        self.stats = ProcPoolStats()
        # Layout versions the worker snapshots were taken at; the owning
        # aggregator rebuilds the pool when any provider re-clusters.
        self.layout_epochs = tuple(provider.layout_epoch for provider in self._providers)
        context = mp.get_context()
        num_workers = parallelism.resolve_workers(len(self._providers))
        self._worker_of = [index % num_workers for index in range(len(self._providers))]
        specs_per_worker: list[list[_ProviderSpec]] = [[] for _ in range(num_workers)]
        for index, provider in enumerate(self._providers):
            columns, blocks = _export_table(provider.table)
            self._blocks.extend(blocks)
            delta_buffer = _SharedDeltaBuffer(provider.table.schema.column_names)
            self._delta_buffers.append(delta_buffer)
            if provider.delta.watermark:
                # Pre-populate the shared buffer with the pending
                # (uncompacted) rows instead of pickling them into the spec.
                pending = provider.delta.rows_upto(provider.delta.watermark)
                delta_buffer.append(pending)
                self.stats.delta_rows_shipped += pending.num_rows
                self.stats.delta_shared_bytes += (
                    pending.num_rows * delta_buffer.row_bytes
                )
            specs_per_worker[self._worker_of[index]].append(
                _ProviderSpec(
                    provider_id=provider.provider_id,
                    cluster_size=provider.cluster_size,
                    n_min=provider.n_min,
                    clustering_policy=provider.clustering_policy,
                    sort_by=provider.sort_by,
                    intra_sort_by=provider.intra_sort_by,
                    cache_config=provider.cache_config,
                    execution_config=provider.execution_config,
                    ingest_config=provider.ingest_config,
                    schema=provider.table.schema,
                    columns=columns,
                    rng_state=provider._rng.bit_generator.state,
                    stream_entropy=provider._stream_entropy,
                    delta=delta_buffer.spec(),
                )
            )
        try:
            for worker_specs in specs_per_worker:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main, args=(child_conn, worker_specs), daemon=True
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._processes.append(process)
            for conn in self._conns:
                status, _ = conn.recv()
                if status != "ready":  # pragma: no cover - defensive
                    raise ProtocolError("provider worker failed to initialise")
        except BaseException:
            self.close()
            raise

    # -- phase calls -------------------------------------------------------

    def summary_batch(self, requests, epsilon_allocation: float):
        """Run ``prepare_summary_batch`` on every provider's worker."""
        return self._call(
            [
                ("summary", provider.provider_id, requests, epsilon_allocation)
                for provider in self._providers
            ],
            sync_rng=True,
        )

    def answer_batch(self, allocations_per_provider, budget, use_smc: bool):
        """Run ``answer_batch`` on every provider's worker."""
        return self._call(
            [
                ("answer", provider.provider_id, allocations, budget, use_smc)
                for provider, allocations in zip(self._providers, allocations_per_provider)
            ],
            sync_rng=True,
        )

    def forget_batch(self, query_ids) -> None:
        """Drop the per-query worker sessions (idempotent)."""
        self._call(
            [
                ("forget", provider.provider_id, list(query_ids))
                for provider in self._providers
            ],
            sync_rng=False,
        )

    def ingest(self, provider_index: int, rows) -> None:
        """Mirror an append onto one provider's worker (append-only).

        The parent aggregator routes every ingest here *before* applying it
        to its own provider object, so the two views of the delta buffer
        advance in lockstep and any in-worker session keeps its pinned
        snapshot semantics.

        The rows are written into the provider's shared delta buffer and
        only a ``(descriptor, start, stop)`` triple crosses the pipe —
        zero pickled delta-row bytes per batch.
        """
        provider = self._providers[provider_index]
        worker = self._worker_of[provider_index]
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        buffer = self._delta_buffers[provider_index]
        start, stop = buffer.append(rows)
        self.stats.delta_rows_shipped += rows.num_rows
        self.stats.delta_shared_bytes += rows.num_rows * buffer.row_bytes
        command = ("ingest", provider.provider_id, buffer.spec(), start, stop)
        _charge_pickled_rows(self.stats, command)
        try:
            self._conns[worker].send(command)
            status, payload = self._conns[worker].recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            self.close()
            raise ProtocolError(f"provider worker died: {error!r}") from error
        if status != "ok":
            raise ProtocolError(f"provider worker failed: {payload}")

    def _call(self, commands, *, sync_rng: bool):
        if self._closed:
            raise ProtocolError("provider process pool is closed")
        results = [None] * len(commands)
        errors: list[str] = []
        try:
            order_per_conn: dict[int, list[int]] = {}
            for index, command in enumerate(commands):
                worker = self._worker_of[index]
                self._conns[worker].send(command)
                order_per_conn.setdefault(worker, []).append(index)
            # Drain every expected reply before raising: leaving queued
            # replies behind would desynchronise the per-connection
            # send/recv pairing and corrupt every later call on the pool.
            for worker, indices in order_per_conn.items():
                conn = self._conns[worker]
                for index in indices:
                    status, payload = conn.recv()
                    if status != "ok":
                        errors.append(f"{commands[index][1]!r}: {payload}")
                    else:
                        results[index] = payload
        except (EOFError, BrokenPipeError, OSError) as error:
            # A worker died (crash, OOM kill): the pipe protocol cannot be
            # resynchronised, so tear the whole pool down.  The owning
            # aggregator rebuilds it on the next process-backed batch —
            # mirror the streams that did advance first, so the rebuild
            # snapshots current state.
            if sync_rng:
                self._mirror_rng_states(results)
            self.close()
            raise ProtocolError(f"provider worker died: {error!r}") from error
        if sync_rng:
            # Mirror the workers' stream positions onto the parent providers
            # so the two views of the federation never diverge — including
            # for providers that succeeded in a partially failed call, whose
            # workers have already consumed their draws.
            self._mirror_rng_states(results)
            results = [
                None if payload is None else (payload[0], payload[1])
                for payload in results
            ]
        if errors:
            raise ProtocolError("provider worker failed: " + "; ".join(errors))
        return results

    def _mirror_rng_states(self, results) -> None:
        for index, payload in enumerate(results):
            if payload is not None:
                self._providers[index]._rng.bit_generator.state = payload[2]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Terminate the workers and unlink every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        for buffer in self._delta_buffers:
            buffer.close()
        self._conns = []
        self._processes = []
        self._blocks = []
        self._delta_buffers = []

    def __del__(self) -> None:  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass
