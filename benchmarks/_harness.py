"""Shared recorder for the ``BENCH_*.json`` trajectory files.

Every benchmark that records machine-readable numbers appends entries to
``benchmarks/results/BENCH_<name>.json`` through :func:`record_bench`, so
the files share one schema and stay comparable across commits::

    {
      "bench": "<name>",
      "schema_version": 1,
      "entries": [
        {
          "timestamp": "...",            # UTC, seconds precision
          "machine": {"python": ..., "platform": ..., "machine": ..., "cpus": ...},
          "params": {...},               # workload shape: sizes, counts, seeds
          "metrics": {...}               # measured numbers: seconds, qps, speedups
        },
        ...
      ]
    }

The files are git-tracked on purpose: committing the updated history
alongside a change is what builds the trajectory, so a dirty tree after a
bench run is expected.  Entries written by pre-harness revisions of a file
are preserved verbatim (they lack the ``params`` / ``metrics`` nesting).
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

RESULTS_DIR = Path(__file__).parent / "results"

SCHEMA_VERSION = 1


def machine_info() -> dict[str, Any]:
    """The environment fingerprint attached to every entry."""
    return {
        "python": platform.python_version(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def record_bench(
    name: str,
    *,
    params: Mapping[str, Any],
    metrics: Mapping[str, Any],
) -> dict[str, Any]:
    """Append one entry to ``results/BENCH_<name>.json`` and return it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    history: dict[str, Any] = {"bench": name, "entries": []}
    if path.exists():
        history = json.loads(path.read_text())
    history["schema_version"] = SCHEMA_VERSION
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": dict(params),
        "metrics": dict(metrics),
    }
    history.setdefault("entries", []).append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return entry
