"""Shared recorder for the ``BENCH_*.json`` trajectory files.

Every benchmark that records machine-readable numbers appends entries to
``benchmarks/results/BENCH_<name>.json`` through :func:`record_bench`, so
the files share one schema and stay comparable across commits::

    {
      "bench": "<name>",
      "schema_version": 1,
      "entries": [
        {
          "timestamp": "...",            # UTC, seconds precision
          "machine": {"python": ..., "platform": ..., "machine": ..., "cpus": ...},
          "params": {...},               # workload shape: sizes, counts, seeds
          "metrics": {...}               # measured numbers: seconds, qps, speedups
        },
        ...
      ]
    }

The files are git-tracked on purpose: committing the updated history
alongside a change is what builds the trajectory, so a dirty tree after a
bench run is expected.  Entries written by pre-harness revisions of a file
are preserved verbatim (they lack the ``params`` / ``metrics`` nesting).
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

RESULTS_DIR = Path(__file__).parent / "results"

SCHEMA_VERSION = 1


def machine_info() -> dict[str, Any]:
    """The environment fingerprint attached to every entry."""
    return {
        "python": platform.python_version(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def stats_metrics(
    stats: Any,
    *,
    prefix: str = "",
    suffix: str = "",
    keys: tuple[str, ...] | None = None,
    scale: float = 1.0,
    round_to: int | None = None,
) -> dict[str, Any]:
    """Flatten a stats object's ``as_dict()`` view into bench metrics.

    Every stats dataclass in the tree exposes the same ``as_dict()``
    surface (the one the metrics registry snapshots), so benchmarks record
    through this helper instead of hand-extracting attributes.  ``keys``
    selects a subset, ``prefix``/``suffix`` namespace the result, and
    ``scale``/``round_to`` apply unit conversion to numeric values.
    """
    values = stats.as_dict()
    if keys is not None:
        values = {key: values[key] for key in keys}
    out: dict[str, Any] = {}
    for key, value in values.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if scale != 1.0:
                value = value * scale
            if round_to is not None:
                value = round(value, round_to)
        out[f"{prefix}{key}{suffix}"] = value
    return out


def record_bench(
    name: str,
    *,
    params: Mapping[str, Any],
    metrics: Mapping[str, Any],
) -> dict[str, Any]:
    """Append one entry to ``results/BENCH_<name>.json`` and return it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    history: dict[str, Any] = {"bench": name, "entries": []}
    if path.exists():
        history = json.loads(path.read_text())
    history["schema_version"] = SCHEMA_VERSION
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "params": dict(params),
        "metrics": dict(metrics),
    }
    history.setdefault("entries", []).append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return entry
