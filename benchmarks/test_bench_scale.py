"""Pruned-engine scale benchmark: size × selectivity × engine × backend.

Times the exact ``Q(C)`` batch kernel over a sorted-clustered table at two
sizes and three selectivity levels, for four engine configurations:

* ``dense`` — the reference engine (no pruning, no tiling): every
  (query, cluster) pair is row-evaluated, work and peak memory O(Q·N);
* ``pruned`` — zone-map pruning only (skip non-overlapping clusters,
  short-circuit fully covered ones to segment sums);
* ``pruned_sorted`` — plus sorted-layout bisection for straddling clusters;
* ``pruned_sorted_tiled`` — plus an 8 MiB kernel memory budget.

The acceptance gate is the tentpole claim: at the full size on the
low-selectivity workload (≤ 5 % of clusters covered) the pruned engine must
be at least ``REPRO_BENCH_MIN_PRUNE_SPEEDUP``x (default 3x) faster than the
dense engine, with every engine returning bit-identical values and the
tiled engine's peak tile footprint bounded by its budget.

A second leg times the full DP protocol on a 4-provider federation under
the three provider fan-out backends (serial / thread / process).  The
backends are asserted bit-identical; their timings are recorded without a
gate — the process backend's win is core-count dependent and CI boxes (and
this container) may be single-core.

Entries append to ``results/BENCH_scale.json`` via the shared harness.
Scale knobs: ``REPRO_BENCH_SCALE_ROWS`` (default 1 000 000),
``REPRO_BENCH_SCALE_BACKEND_ROWS`` (default 200 000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from _harness import record_bench

from repro.config import (
    DENSE_EXECUTION,
    ExecutionConfig,
    ParallelismConfig,
    SamplingConfig,
    SystemConfig,
)
from repro.core.system import FederatedAQPSystem
from repro.query.batch import QueryBatch
from repro.query.model import RangeQuery
from repro.storage.clustered_table import ClusteredTable
from repro.storage.kernels import numba_available
from repro.storage.layout import collect_kernel_telemetry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

SCALE_ROWS = int(os.environ.get("REPRO_BENCH_SCALE_ROWS", "1000000"))
BACKEND_ROWS = int(os.environ.get("REPRO_BENCH_SCALE_BACKEND_ROWS", "200000"))
NUM_QUERIES = 16
REPS = 3
CLUSTER_SIZE = 1000
KEY_DOMAIN = 10_000
TILE_BUDGET = 8 * 2**20
# Required pruned-over-dense speedup at full size / low selectivity.  3x is
# the acceptance floor on a quiet machine; noisy shared CI runners can relax
# it via the environment without touching code.
MIN_PRUNE_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_PRUNE_SPEEDUP",
        os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"),
    )
)

# Required compiled-over-numpy kernel speedup on the dense-residual leg.
# Only enforced when numba is importable — the pure-NumPy fallback is a
# correctness path, not a performance claim.
MIN_KERNEL_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_KERNEL_SPEEDUP", "5.0"))

SCHEMA = Schema(
    (
        Dimension("key", 0, KEY_DOMAIN - 1),
        Dimension("aux", 0, 99),
        Dimension("cat", 0, 9),
    )
)

ENGINES = {
    "dense": DENSE_EXECUTION,
    "pruned": ExecutionConfig(prune=True, sorted_bisect=False, max_kernel_bytes=None),
    "pruned_sorted": ExecutionConfig(prune=True, sorted_bisect=True, max_kernel_bytes=None),
    "pruned_sorted_tiled": ExecutionConfig(
        prune=True, sorted_bisect=True, max_kernel_bytes=TILE_BUDGET
    ),
}

# Fraction of the key domain each query's range spans; with the sorted
# clustering policy the covered-cluster fraction tracks it closely.
SELECTIVITIES = {"low": 0.04, "mid": 0.25, "high": 0.80}


def _table(num_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "key": rng.integers(0, KEY_DOMAIN, num_rows),
            "aux": rng.integers(0, 100, num_rows),
            "cat": rng.integers(0, 10, num_rows),
        },
    )


def _workload(selectivity: float, seed: int) -> QueryBatch:
    rng = np.random.default_rng(seed)
    width = max(1, int(selectivity * KEY_DOMAIN))
    queries = []
    for _ in range(NUM_QUERIES):
        low = int(rng.integers(0, max(1, KEY_DOMAIN - width)))
        queries.append(RangeQuery.count({"key": (low, low + width - 1)}))
    return QueryBatch(tuple(queries))


def _best_seconds(fn) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _covered_fraction(layout, batch: QueryBatch) -> float:
    """Fraction of (query, cluster) pairs whose zones overlap the query."""
    lows, highs = batch.bounds(0, KEY_DOMAIN)["key"]
    overlap = (layout.zone_max["key"][None, :] >= lows[:, None]) & (
        layout.zone_min["key"][None, :] <= highs[:, None]
    )
    return float(overlap.mean())


def test_scale_matrix_and_prune_speedup(benchmark):
    sizes = sorted({max(SCALE_ROWS // 4, 1000), SCALE_ROWS})
    matrix = []
    gate_speedup = None
    for num_rows in sizes:
        table = _table(num_rows, seed=0)
        layout = ClusteredTable.from_table(
            table, CLUSTER_SIZE, policy="sorted", sort_by="key"
        ).layout()
        for level, selectivity in SELECTIVITIES.items():
            batch = _workload(selectivity, seed=42)
            covered = _covered_fraction(layout, batch)
            reference = layout.cluster_values(batch, execution=DENSE_EXECUTION)
            timings: dict[str, float] = {}
            for engine, execution in ENGINES.items():
                values = layout.cluster_values(batch, execution=execution)
                assert np.array_equal(values, reference), (engine, level, num_rows)
                timings[engine] = _best_seconds(
                    lambda execution=execution: layout.cluster_values(
                        batch, execution=execution
                    )
                )
            with collect_kernel_telemetry() as stats:
                layout.cluster_values(batch, execution=ENGINES["pruned_sorted_tiled"])
            assert stats.max_tile_bytes <= TILE_BUDGET, (
                f"tiled kernel peak {stats.max_tile_bytes} exceeds budget {TILE_BUDGET}"
            )
            speedup = timings["dense"] / timings["pruned_sorted"]
            matrix.append(
                {
                    "rows": num_rows,
                    "selectivity": level,
                    "covered_cluster_fraction": round(covered, 4),
                    "seconds": {k: round(v, 6) for k, v in timings.items()},
                    "qps": {
                        k: round(NUM_QUERIES / v, 1) for k, v in timings.items()
                    },
                    "prune_speedup": round(speedup, 2),
                    "rows_evaluated_pruned": stats.rows_evaluated,
                    "pairs_bisected": stats.pairs_bisected,
                    "max_tile_bytes": stats.max_tile_bytes,
                }
            )
            if num_rows == SCALE_ROWS and level == "low":
                gate_speedup = speedup
                gate_layout, gate_batch = layout, batch

    record_bench(
        "scale",
        params={
            "num_queries": NUM_QUERIES,
            "cluster_size": CLUSTER_SIZE,
            "reps": REPS,
            "tile_budget_bytes": TILE_BUDGET,
            "sizes": sizes,
        },
        metrics={"matrix": matrix},
    )
    for point in matrix:
        print(
            f"\nscale {point['rows']:>8} rows, {point['selectivity']:<4}: "
            f"dense {point['qps']['dense']:>8} q/s, pruned+sorted "
            f"{point['qps']['pruned_sorted']:>10} q/s ({point['prune_speedup']}x)"
        )

    assert gate_speedup is not None
    low = next(
        p for p in matrix if p["rows"] == SCALE_ROWS and p["selectivity"] == "low"
    )
    if SCALE_ROWS >= 500_000:
        # The "≤ 5 % of clusters covered" framing of the acceptance gate
        # only holds once there are enough clusters for the fixed-width
        # ranges to be narrow relative to the table; at smoke sizes the
        # fraction is a clustering-granularity artifact, so it is recorded
        # but not asserted.
        assert low["covered_cluster_fraction"] <= 0.05
    assert gate_speedup >= MIN_PRUNE_SPEEDUP, (
        f"pruned engine must be >= {MIN_PRUNE_SPEEDUP}x the dense engine on the "
        f"low-selectivity workload at {SCALE_ROWS} rows, got {gate_speedup:.2f}x"
    )

    benchmark(
        lambda: gate_layout.cluster_values(
            gate_batch, execution=ENGINES["pruned_sorted"]
        )
    )


def test_scale_compiled_tier_dense_residual():
    """Kernel-backend leg: the dense residual (row-evaluated straddlers).

    A *sequentially* clustered table gives the zone maps almost nothing to
    prune and leaves nearly every covered (query, cluster) pair straddling,
    so this workload is pure row evaluation — exactly the path the compiled
    kernel tier fuses.  The backends must be bit-identical; the ``>=``
    ``REPRO_BENCH_MIN_KERNEL_SPEEDUP`` gate (default 5x) applies only when
    numba is importable.
    """
    table = _table(SCALE_ROWS, seed=2)
    layout = ClusteredTable.from_table(table, CLUSTER_SIZE).layout()
    batch = _workload(SELECTIVITIES["mid"], seed=11)
    execution_by_backend = {
        backend: ExecutionConfig(
            prune=True, sorted_bisect=False, kernel_backend=backend
        )
        for backend in (["numpy", "numba"] if numba_available() else ["numpy"])
    }
    reference = None
    timings: dict[str, float] = {}
    fused: dict[str, int] = {}
    for backend, execution in execution_by_backend.items():
        with collect_kernel_telemetry() as stats:
            values = layout.cluster_values(batch, execution=execution)
        if reference is None:
            reference = values
        assert np.array_equal(values, reference), backend
        assert stats.backend == backend
        fused[backend] = stats.pairs_fused
        timings[backend] = _best_seconds(
            lambda execution=execution: layout.cluster_values(
                batch, execution=execution
            )
        )
    speedup = (
        round(timings["numpy"] / timings["numba"], 2) if "numba" in timings else None
    )
    record_bench(
        "scale",
        params={
            "leg": "compiled_kernels",
            "rows": SCALE_ROWS,
            "num_queries": NUM_QUERIES,
            "cluster_size": CLUSTER_SIZE,
            "numba_available": numba_available(),
        },
        metrics={
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "pairs_fused": fused,
            "kernel_speedup": speedup,
        },
    )
    print(
        "\ncompiled-tier seconds: "
        + ", ".join(f"{k} {v:.4f}s" for k, v in timings.items())
    )
    if numba_available():
        assert speedup is not None
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"compiled kernels must be >= {MIN_KERNEL_SPEEDUP}x the numpy kernels "
            f"on the dense-residual leg at {SCALE_ROWS} rows, got {speedup:.2f}x"
        )


def test_scale_backend_matrix():
    table = _table(BACKEND_ROWS, seed=1)
    base = SystemConfig(
        cluster_size=CLUSTER_SIZE,
        num_providers=4,
        sampling=SamplingConfig(sampling_rate=0.1, min_clusters_for_approximation=4),
        seed=5,
    )
    queries = list(_workload(SELECTIVITIES["mid"], seed=7))
    backends = {
        "serial": base,
        "thread": base.with_parallelism(ParallelismConfig(enabled=True)),
        "process": base.with_parallelism(
            ParallelismConfig(enabled=True, backend="process")
        ),
    }
    reference = None
    timings = {}
    for backend, config in backends.items():
        with FederatedAQPSystem.from_table(table, config=config) as system:
            values = system.execute_batch(queries, compute_exact=False).values
            if reference is None:
                reference = values
            assert values == reference, backend
            timings[backend] = _best_seconds(
                lambda system=system: system.execute_batch(
                    queries, compute_exact=False
                )
            )
    record_bench(
        "scale",
        params={
            "leg": "backends",
            "rows": BACKEND_ROWS,
            "num_queries": NUM_QUERIES,
            "num_providers": 4,
        },
        metrics={
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "thread_speedup": round(timings["serial"] / timings["thread"], 2),
            "process_speedup": round(timings["serial"] / timings["process"], 2),
        },
    )
    print(
        "\nbackend seconds: "
        + ", ".join(f"{k} {v:.3f}s" for k, v in timings.items())
    )
