"""Cache reuse benchmark: throughput and budget savings on repeated predicates.

Runs the workload-locality experiment (a small pool of predicates repeated,
executed for several rounds) on two identically seeded federations — release
cache off and on — and records both axes of the win:

* **throughput** — warm rounds must be at least 2x faster with the cache on
  (cache hits skip the metadata pass, the EM sampling, and the cluster
  scans entirely);
* **budget** — the cache-on run must charge measurably less epsilon (every
  repeated release is DP post-processing and costs nothing).

Correctness gate: the cache-off run is asserted bit-identical to the plain
batch engine (the PR-1 path) under the same seed before anything is timed.

Each run appends an entry to ``results/BENCH_cache_hit_rate.json`` through
the shared harness (see :mod:`_harness` for the schema) so the reuse
trajectory across commits can be tracked.
"""

from __future__ import annotations

import os

from _harness import record_bench

from repro.config import CacheConfig
from repro.experiments.scenarios import adult_scenario
from repro.experiments.workload_locality import (
    format_locality_table,
    run_workload_locality,
)

NUM_ROWS = 100_000
NUM_UNIQUE = 8
REPEATS = 4
ROUNDS = 3
# Required warm-round speedup of cache-on over cache-off.  2x on a quiet
# machine; noisy shared CI runners can relax it via the environment.
MIN_SPEEDUP = float(
    os.environ.get(
        "REPRO_BENCH_MIN_CACHE_SPEEDUP",
        os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"),
    )
)


def test_cache_hit_rate_and_budget_savings(benchmark, write_result):
    scenario = adult_scenario(num_rows=NUM_ROWS, seed=0)

    # Correctness gate: cache-off must be bit-identical to the plain batch
    # engine (default config) under the same seed.
    pool = list(
        scenario.workload_generator(seed=11).generate(
            NUM_UNIQUE,
            3,
            accept_batch=scenario.batch_acceptance_predicate(min_selectivity=0.02),
        )
    )
    plain_values = scenario.system.execute_batch(pool, compute_exact=False).values
    from dataclasses import replace

    from repro.core.system import FederatedAQPSystem

    off_config = replace(scenario.system.config, cache=CacheConfig(enabled=False))
    off_system = FederatedAQPSystem.from_table(scenario.tensor, config=off_config)
    off_values = off_system.execute_batch(pool, compute_exact=False).values
    assert off_values == plain_values

    result = run_workload_locality(
        scenario,
        num_unique=NUM_UNIQUE,
        repeats=REPEATS,
        rounds=ROUNDS,
        workload_seed=11,
    )
    table = format_locality_table(result)
    write_result("cache_hit_rate", table)

    assert result.epsilon_saved > 0, "reuse must save measurable epsilon"
    assert result.warm_answer_hit_rate == 1.0, "warm rounds must be fully reused"
    assert result.warm_speedup >= MIN_SPEEDUP, (
        f"cache-on warm rounds must be >= {MIN_SPEEDUP}x cache-off, got "
        f"{result.warm_speedup:.2f}x"
    )

    record_bench(
        "cache_hit_rate",
        params={
            "federation_rows": NUM_ROWS,
            "num_unique": NUM_UNIQUE,
            "num_queries": result.num_queries,
            "rounds": ROUNDS,
        },
        metrics={
            "warm_speedup": round(result.warm_speedup, 2),
            "warm_answer_hit_rate": round(result.warm_answer_hit_rate, 3),
            "epsilon_charged_off": round(result.epsilon_charged_off, 3),
            "epsilon_charged_on": round(result.epsilon_charged_on, 3),
            "epsilon_saved": round(result.epsilon_saved, 3),
        },
    )

    # Steady-state hot-loop measurement: a fully warmed cache-on batch.
    warm_config = replace(scenario.system.config, cache=CacheConfig(enabled=True))
    warm_system = FederatedAQPSystem.from_table(scenario.tensor, config=warm_config)
    workload = list(pool) * REPEATS
    warm_system.execute_batch(workload, compute_exact=False)
    benchmark(lambda: warm_system.execute_batch(workload, compute_exact=False).values)
