"""Table 1 — resilience to the learning-based (NBC) attribute-inference attack.

Paper shape: for every composition regime (sequential, advanced, coalition),
both aggregations, and every total attacker budget xi in {1, ..., 100}, the
attacker's accuracy stays at (or very near) the chance level 1 / ||SA||.

The full paper grid is 24 cells of ~2 000 protected queries each; the default
benchmark runs a representative subset (both extremes of xi, all three
regimes, COUNT queries) and a reduced sensitive-attribute domain so it
finishes in minutes.  Set ``REPRO_BENCH_FULL_ATTACK=1`` for the full grid.
"""

from __future__ import annotations

import os

from repro.attacks.budgeting import AttackBudgetRegime
from repro.experiments.attack_resilience import (
    format_attack_resilience,
    run_attack_resilience,
)
from repro.query.model import Aggregation

FULL = os.environ.get("REPRO_BENCH_FULL_ATTACK", "0") == "1"


def test_table1_attack_resilience(benchmark, adult, write_result):
    if FULL:
        cells = run_attack_resilience(seed=5)
    else:
        cells = run_attack_resilience(
            xis=(1.0, 100.0),
            regimes=(
                AttackBudgetRegime.SEQUENTIAL,
                AttackBudgetRegime.ADVANCED,
                AttackBudgetRegime.COALITION,
            ),
            aggregations=(Aggregation.COUNT,),
            num_rows=8_000,
            sensitive_domain=50,
            evaluation_rows=200,
            seed=5,
        )
    write_result("table1_attack_resilience", format_attack_resilience(cells))

    for cell in cells:
        # The attack must stay near chance level.  At this reduced benchmark
        # scale (smaller sensitive domain, few evaluation rows) the accuracy
        # estimate itself is noisy, so allow a modest margin above chance;
        # the unprotected attack on comparable data scores several times
        # higher (see tests/test_attacks.py and examples/attack_demo.py).
        assert cell.accuracy <= max(0.15, 6.0 * cell.chance_accuracy), (
            f"attack succeeded for {cell.regime}/{cell.aggregation}/xi={cell.total_epsilon}: "
            f"accuracy {cell.accuracy:.3f} vs chance {cell.chance_accuracy:.3f}"
        )

    # Benchmark one protected attack query (point query through the protocol).
    query = "SELECT COUNT(*) FROM t WHERE age = 40"
    benchmark(lambda: adult.system.execute(query, epsilon=0.001, compute_exact=False).value)
