"""Transport overhead benchmark: in-process vs loopback vs socket vs sharded.

Times the full DP protocol on a small federation under every transport the
system supports, on the same table and query workload:

* ``inprocess`` — direct method calls (the reference; zero wire cost);
* ``loopback`` — full serialize → frame → deframe → deserialize round
  trip in-process, isolating pure codec + framing overhead;
* ``socket`` — real localhost TCP with length-prefixed frames, adding
  syscalls and the asyncio dispatch hop;
* ``sharded-k2`` — in-process transport with each provider's table split
  across two shard workers, isolating the shard merge overhead.

Every configuration is asserted bit-identical to the in-process reference
— ``(value, epsilon_spent, delta_spent)`` per query — before any timing is
recorded, so the numbers can never describe diverging answers.  Timings
are recorded without a gate: the point is the recorded overhead ratio, and
wire transports on a loaded CI box are too noisy for a hard floor.

Entries append to ``results/BENCH_transport.json`` via the shared harness.
Scale knob: ``REPRO_BENCH_TRANSPORT_ROWS`` (default 60 000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from _harness import record_bench

from repro.config import SamplingConfig, SystemConfig, TransportConfig
from repro.core.system import FederatedAQPSystem
from repro.query.model import RangeQuery
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

ROWS = int(os.environ.get("REPRO_BENCH_TRANSPORT_ROWS", "60000"))
NUM_PROVIDERS = 3
NUM_QUERIES = 12
REPS = 3

SCHEMA = Schema(
    (
        Dimension("age", 0, 99),
        Dimension("hours", 0, 49),
        Dimension("dept", 0, 19),
    )
)

TRANSPORTS = {
    "inprocess": TransportConfig(),
    "loopback": TransportConfig(kind="loopback"),
    "socket": TransportConfig(kind="socket"),
    "sharded-k2": TransportConfig(shard_workers=2),
}


def _table() -> Table:
    rng = np.random.default_rng(31)
    return Table(
        SCHEMA,
        {
            "age": rng.integers(0, 100, ROWS),
            "hours": np.minimum(49, rng.poisson(14, ROWS)),
            "dept": rng.integers(0, 20, ROWS),
        },
    )


def _workload() -> list[RangeQuery]:
    rng = np.random.default_rng(17)
    queries = []
    for _ in range(NUM_QUERIES):
        age_low = int(rng.integers(0, 80))
        hours_low = int(rng.integers(0, 30))
        queries.append(
            RangeQuery.count(
                {
                    "age": (age_low, age_low + int(rng.integers(5, 20))),
                    "hours": (hours_low, hours_low + int(rng.integers(5, 19))),
                }
            )
        )
    return queries


def _config(transport: TransportConfig) -> SystemConfig:
    return SystemConfig(
        cluster_size=500,
        num_providers=NUM_PROVIDERS,
        sampling=SamplingConfig(sampling_rate=0.25, min_clusters_for_approximation=3),
        transport=transport,
        seed=29,
    )


def _best_seconds(fn) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_transport_overhead():
    table = _table()
    queries = _workload()
    reference = None
    timings: dict[str, float] = {}
    wire: dict[str, dict[str, int]] = {}
    for name, transport in TRANSPORTS.items():
        with FederatedAQPSystem.from_table(
            table, config=_config(transport)
        ) as system:
            batch = system.execute_batch(queries, compute_exact=False)
            fingerprint = [
                (r.value, r.epsilon_spent, r.delta_spent) for r in batch.results
            ]
            if reference is None:
                reference = fingerprint
            assert fingerprint == reference, name
            timings[name] = _best_seconds(
                lambda system=system: system.execute_batch(
                    queries, compute_exact=False
                )
            )
            stats = system.transport_stats()
            wire[name] = {
                "frames": stats.messages,
                "bytes_sent": stats.bytes_sent,
            }
    base = timings["inprocess"]
    record_bench(
        "transport",
        params={
            "rows": ROWS,
            "num_providers": NUM_PROVIDERS,
            "num_queries": NUM_QUERIES,
            "reps": REPS,
        },
        metrics={
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "overhead_vs_inprocess": {
                k: round(v / base, 3) for k, v in timings.items()
            },
            "wire": wire,
        },
    )
