"""Figure 7 — impact of query dimensionality and epsilon on the speed-up.

Paper shape (Amazon dataset): speed-up decreases slightly as the number of
dimensions grows (more metadata consulted per cluster) and is essentially
flat in epsilon (the privacy budget does not change how much data is read).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.dimension_analysis import (
    format_dimension_analysis,
    run_dimension_analysis,
)
from repro.experiments.epsilon_analysis import (
    format_epsilon_analysis,
    run_epsilon_analysis,
)
from repro.query.model import Aggregation


def test_fig7_speedup_vs_dimensions_amazon(benchmark, amazon, write_result, queries_per_point):
    points = run_dimension_analysis(
        amazon,
        dimension_counts=[2, 3, 4, 5],
        queries_per_point=queries_per_point,
        aggregations=(Aggregation.COUNT,),
        seed=3,
    )
    write_result("fig7_speedup_dimensions_amazon", format_dimension_analysis(points))
    assert all(point.mean_work_speedup > 1 for point in points)

    benchmark(lambda: amazon.system.exact_baseline(
        "SELECT COUNT(*) FROM t WHERE 1 <= rating AND rating <= 4"
    ).value)


def test_fig7_speedup_vs_epsilon_amazon(benchmark, amazon, write_result, queries_per_point):
    points = run_epsilon_analysis(
        amazon,
        epsilons=(0.1, 0.5, 0.9, 1.3),
        # More queries per point than the other figures: the flatness check
        # below averages away the allocation-phase DP noise, which at
        # eps = 0.1 perturbs per-query sample sizes substantially.
        queries_per_point=max(queries_per_point, 16),
        aggregations=(Aggregation.COUNT,),
        seed=3,
    )
    write_result("fig7_speedup_epsilon_amazon", format_epsilon_analysis(points))
    speedups = [point.mean_work_speedup for point in points]
    # Epsilon must not change how much data is scanned.  At laptop scale the
    # noisy allocation summaries still jitter the per-point means, so "flat"
    # is asserted loosely (within 1.5x) rather than the paper-scale 1.1x.
    assert max(speedups) <= 1.5 * min(speedups)
    assert all(speedup > 1 for speedup in speedups)

    benchmark(
        lambda: amazon.system.execute(
            "SELECT COUNT(*) FROM t WHERE 1 <= rating AND rating <= 4",
            epsilon=1.3,
            compute_exact=False,
        ).value
    )
