"""Ingestion benchmark: sustained append throughput under live query traffic.

Eight tenants keep submitting query workloads to the
:class:`~repro.service.scheduler.SessionScheduler` for several drain rounds,
twice:

* **static** — queries only: the baseline per-drain latency;
* **live** — every round additionally queues one ingest batch, sized so each
  provider's :class:`~repro.config.IngestConfig` threshold trips and at
  least one full **compaction cycle** (append → fold → epoch bump) runs
  while the tenants' traffic keeps flowing.

The gate is the latency-degradation bound: the live p50 per-drain latency
must stay within ``REPRO_BENCH_INGEST_MAX_SLOWDOWN`` (2.5x default,
env-relaxable) of the static p50, and at least one compaction must have
happened — i.e. absorbing writes and folding them costs at most a bounded
constant factor, never a stop-the-world pause.  Sustained ingest rows/sec
is recorded alongside.

Each run appends an entry to ``results/BENCH_ingest.json`` through the
shared harness (see :mod:`_harness` for the schema).
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from _harness import record_bench, stats_metrics

from repro.config import IngestConfig, ServiceConfig, SystemConfig
from repro.core.system import FederatedAQPSystem
from repro.experiments.scenarios import adult_scenario
from repro.query.model import Aggregation
from repro.service import SessionScheduler, TenantRegistry

NUM_TENANTS = 8
QUERIES_PER_TENANT = 4
ROUNDS = 9
NUM_ROWS = int(os.environ.get("REPRO_BENCH_INGEST_ROWS", "60000"))
INGEST_ROWS_PER_ROUND = max(NUM_ROWS // 24, 40)
MAX_SLOWDOWN = float(os.environ.get("REPRO_BENCH_INGEST_MAX_SLOWDOWN", "2.5"))

TENANT_IDS = tuple(f"tenant-{index}" for index in range(NUM_TENANTS))


def _build():
    scenario = adult_scenario(num_rows=NUM_ROWS, seed=0)
    # Threshold sized so every provider folds at least once over the run.
    config = SystemConfig(
        cluster_size=scenario.system.config.cluster_size,
        num_providers=scenario.system.config.num_providers,
        privacy=scenario.system.config.privacy,
        sampling=scenario.system.config.sampling,
        seed=0,
        ingest=IngestConfig(
            max_delta_rows=max(
                2 * INGEST_ROWS_PER_ROUND // scenario.system.num_providers, 1
            )
        ),
    )
    system = FederatedAQPSystem.from_table(scenario.tensor, config=config)
    generator = scenario.workload_generator(seed=23)
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=0.02)
    queries = list(
        generator.generate(
            NUM_TENANTS * QUERIES_PER_TENANT,
            3,
            Aggregation.COUNT,
            accept_batch=accept_batch,
        )
    )
    workloads = {
        tenant_id: queries[
            index * QUERIES_PER_TENANT : (index + 1) * QUERIES_PER_TENANT
        ]
        for index, tenant_id in enumerate(TENANT_IDS)
    }
    # Ingest traffic: fresh draws from the same distribution, pre-split into
    # per-round batches (rows stay inside the tensor schema's domains).
    tensor = scenario.tensor
    rng = np.random.default_rng(7)
    batches = [
        tensor.take(rng.integers(0, tensor.num_rows, INGEST_ROWS_PER_ROUND))
        for _ in range(ROUNDS)
    ]
    registry = TenantRegistry()
    for tenant_id in TENANT_IDS:
        registry.register(tenant_id, total_epsilon=1e9, total_delta=1.0)
    scheduler = SessionScheduler(
        system,
        registry,
        config=ServiceConfig(max_pending=NUM_TENANTS * (ROUNDS + 2)),
    )
    return scheduler, workloads, batches


def _run(scheduler, workloads, batches, *, live: bool):
    latencies = []
    for round_index in range(ROUNDS):
        start = time.perf_counter()
        for tenant_id in TENANT_IDS:
            scheduler.submit(tenant_id, workloads[tenant_id])
        if live:
            scheduler.submit_ingest(batches[round_index])
        answers = scheduler.drain()
        latencies.append(time.perf_counter() - start)
        assert len(answers) == NUM_TENANTS
    return latencies


def test_sustained_ingest_under_live_query_traffic():
    static_scheduler, workloads, batches = _build()
    _run(static_scheduler, workloads, batches, live=False)  # warm-up round set
    static_latencies = _run(static_scheduler, workloads, batches, live=False)

    live_scheduler, workloads, batches = _build()
    _run(live_scheduler, workloads, batches, live=False)  # identical warm-up
    ingest_start = time.perf_counter()
    live_latencies = _run(live_scheduler, workloads, batches, live=True)
    live_seconds = time.perf_counter() - ingest_start

    static_p50 = statistics.median(static_latencies)
    live_p50 = statistics.median(live_latencies)
    slowdown = live_p50 / static_p50
    rows_ingested = live_scheduler.stats.rows_ingested
    compactions = live_scheduler.stats.compactions
    ingest_rows_per_sec = rows_ingested / live_seconds
    network = live_scheduler.system.aggregator.network.snapshot()

    record_bench(
        "ingest",
        params={
            "num_tenants": NUM_TENANTS,
            "queries_per_tenant": QUERIES_PER_TENANT,
            "rounds": ROUNDS,
            "federation_rows": NUM_ROWS,
            "ingest_rows_per_round": INGEST_ROWS_PER_ROUND,
        },
        metrics={
            "static_p50_seconds": round(static_p50, 4),
            "live_p50_seconds": round(live_p50, 4),
            "latency_slowdown": round(slowdown, 3),
            "ingest_rows_per_sec": round(ingest_rows_per_sec, 1),
            **stats_metrics(
                live_scheduler.stats, keys=("rows_ingested", "compactions")
            ),
            **stats_metrics(
                network, keys=("ingest_messages", "ingest_bytes_sent")
            ),
        },
    )
    print(
        f"\ningest under load ({NUM_TENANTS} tenants): {ingest_rows_per_sec:.0f} rows/s "
        f"sustained, {compactions} compactions, query p50 {live_p50 * 1e3:.1f} ms "
        f"live vs {static_p50 * 1e3:.1f} ms static ({slowdown:.2f}x)"
    )
    # Acceptance: at least one full compaction cycle ran under live traffic...
    assert compactions >= 1, "no compaction cycle ran under live traffic"
    assert rows_ingested == ROUNDS * INGEST_ROWS_PER_ROUND
    # ...and absorbing it kept query latency within the degradation gate.
    assert slowdown <= MAX_SLOWDOWN, (
        f"live-ingest query p50 degraded {slowdown:.2f}x over static "
        f"(gate {MAX_SLOWDOWN}x): static {static_p50:.4f}s, live {live_p50:.4f}s"
    )
