"""Latency-SLO benchmark: cost-model scheduling under mixed traffic.

Eight tenants share one drain: ``a-analytics`` (canonically first, so it
convoys a FIFO drain) submits one expensive multi-query analytics batch at
priority 1, while seven ``tenant-*`` dashboards each submit a stream of
cheap single-query submissions at priority 8.  The same workload runs
through two fresh, identically seeded deployments:

* **fifo** — the default scheduler: uniform priorities, count chunking,
  serial phases.  Canonical coalescing puts the analytics batch at the
  head of the drain, so every dashboard answer waits behind it;
* **slo** — priority classes + ``drain_time_budget_ms`` work packing +
  ``overlap_phases``: weighted-fair admission settles the dashboards
  first, the time budget keeps chunks (and thus settlement granularity)
  small, and each chunk's combination overlaps the next chunk's provider
  phases.

The dashboards' p99 settlement latency must improve by at least
``REPRO_BENCH_LATENCY_MIN_P99_GAIN`` (2x default) — while every tenant's
answers and epsilon charges stay bit-identical between the two modes (the
SLO levers move *when* work runs, never what it returns).

Each run appends an entry to ``results/BENCH_latency.json`` through the
shared harness (see :mod:`_harness` for the schema).
"""

from __future__ import annotations

import os

from _harness import record_bench, stats_metrics

from repro.config import ServiceConfig
from repro.experiments.scenarios import adult_scenario
from repro.query.model import Aggregation
from repro.service import LatencyHistogram, SessionScheduler, TenantRegistry
from repro.workloads.generator import WorkloadGenerator

HEAVY_TENANT = "a-analytics"  # sorts before "tenant-*": the FIFO convoy head
CHEAP_TENANTS = tuple(f"tenant-{index}" for index in range(7))
HEAVY_QUERIES = 192  # one submission, dims=3: straddler-heavy, expensive
CHEAP_SUBMISSIONS = 12  # per dashboard tenant, one narrow query each
NUM_ROWS = int(os.environ.get("REPRO_BENCH_LATENCY_ROWS", "60000"))
REPS = 3
MIN_P99_GAIN = float(os.environ.get("REPRO_BENCH_LATENCY_MIN_P99_GAIN", "2.0"))

SLO_CONFIG = ServiceConfig(
    drain_time_budget_ms=25.0,
    overlap_phases=True,
    max_pending=1024,
)
FIFO_CONFIG = ServiceConfig(max_pending=1024)


def _scenario():
    return adult_scenario(num_rows=NUM_ROWS, seed=0)


def _workloads(scenario, rounds: int):
    """Per-round heavy analytics batches plus dashboard single-query streams.

    Heavy queries are wide multi-dimensional scans (many straddling
    clusters, lots of row-level work); dashboard queries are narrow
    single-dimension lookups.  Every round draws *distinct* predicates, so
    repeated drains measure real federation work instead of release-cache
    hits.
    """
    wide = scenario.workload_generator(seed=31)
    # Dashboards probe the tensor's leading dimension: with sequential
    # clustering the rows are contiguous in it, so a narrow range touches
    # a handful of clusters (mostly covered) — a genuine point lookup.
    narrow = WorkloadGenerator(
        schema=scenario.tensor.schema,
        dimensions=scenario.queryable_dimensions[:1],
        min_coverage=0.02,
        max_coverage=0.08,
        rng=97,
    )
    per_round = []
    for _ in range(rounds):
        heavy = list(wide.generate(HEAVY_QUERIES, 3, Aggregation.COUNT))
        cheap = list(
            narrow.generate(
                len(CHEAP_TENANTS) * CHEAP_SUBMISSIONS, 1, Aggregation.COUNT
            )
        )
        streams = {
            tenant_id: cheap[
                index * CHEAP_SUBMISSIONS : (index + 1) * CHEAP_SUBMISSIONS
            ]
            for index, tenant_id in enumerate(CHEAP_TENANTS)
        }
        per_round.append((heavy, streams))
    return per_round


def _registry(*, weighted: bool) -> TenantRegistry:
    registry = TenantRegistry()
    registry.register(
        HEAVY_TENANT, total_epsilon=1e6, priority_class=1
    )
    for tenant_id in CHEAP_TENANTS:
        registry.register(
            tenant_id,
            total_epsilon=1e6,
            priority_class=8 if weighted else 1,
        )
    return registry


def _scheduler(scenario, *, slo: bool) -> SessionScheduler:
    return SessionScheduler(
        scenario.fresh_system(),
        _registry(weighted=slo),
        config=SLO_CONFIG if slo else FIFO_CONFIG,
    )


def _serve(scheduler: SessionScheduler, heavy, streams):
    """One drain of one round's mixed workload; returns
    ``(per-tenant state, dashboard latency seconds)``."""
    scheduler.submit(HEAVY_TENANT, heavy)
    # Dashboards submit round-robin, interleaved — arrival order must not
    # matter (coalescing order is canonical / weighted-fair, never FIFO on
    # arrival).
    for position in range(CHEAP_SUBMISSIONS):
        for tenant_id in CHEAP_TENANTS:
            scheduler.submit(tenant_id, [streams[tenant_id][position]])
    answers = scheduler.drain()
    state: dict[str, list] = {}
    cheap_latencies: list[float] = []
    for answer in answers:
        state.setdefault(answer.tenant_id, []).append(
            (answer.submission_id, answer.values, answer.epsilon_charged)
        )
        if answer.tenant_id != HEAVY_TENANT:
            cheap_latencies.append(answer.latency_seconds)
    return state, cheap_latencies


def test_cost_model_scheduling_cuts_dashboard_tail_latency():
    scenario = _scenario()
    rounds = _workloads(scenario, 1 + REPS)

    # Semantics first: the SLO levers reorder and re-chunk the drain, yet
    # every tenant's answers and exact charges must be bit-identical to the
    # FIFO deployment (fresh identically-seeded systems; per-tenant noise
    # streams make scheduling invisible).
    heavy, streams = rounds[0]
    fifo_state, _ = _serve(_scheduler(scenario, slo=False), heavy, streams)
    slo_state, _ = _serve(_scheduler(scenario, slo=True), heavy, streams)
    assert slo_state == fifo_state

    # Timing: one long-lived deployment per mode.  Round 0 is a warmup —
    # it calibrates the cost model's seconds-per-unit against this
    # machine, exactly as a production deployment would converge; rounds
    # 1..REPS are measured, each on distinct predicates.
    fifo = _scheduler(scenario, slo=False)
    slo = _scheduler(scenario, slo=True)
    _serve(fifo, *rounds[0])
    _serve(slo, *rounds[0])
    fifo_hist = LatencyHistogram()
    slo_hist = LatencyHistogram()
    fifo_p99s: list[float] = []
    slo_p99s: list[float] = []
    for heavy, streams in rounds[1:]:
        rep = LatencyHistogram()
        _, latencies = _serve(fifo, heavy, streams)
        for seconds in latencies:
            rep.record(seconds)
            fifo_hist.record(seconds)
        fifo_p99s.append(rep.p99)
        rep = LatencyHistogram()
        _, latencies = _serve(slo, heavy, streams)
        for seconds in latencies:
            rep.record(seconds)
            slo_hist.record(seconds)
        slo_p99s.append(rep.p99)

    p99_fifo = min(fifo_p99s)
    p99_slo = min(slo_p99s)
    gain = p99_fifo / p99_slo if p99_slo > 0 else float("inf")

    record_bench(
        "latency",
        params={
            "num_tenants": 1 + len(CHEAP_TENANTS),
            "heavy_queries": HEAVY_QUERIES,
            "cheap_submissions_per_tenant": CHEAP_SUBMISSIONS,
            "federation_rows": NUM_ROWS,
            "drain_time_budget_ms": SLO_CONFIG.drain_time_budget_ms,
            "reps": REPS,
        },
        metrics={
            **stats_metrics(
                fifo_hist,
                prefix="fifo_",
                suffix="_ms",
                keys=("p50", "p95"),
                scale=1e3,
                round_to=3,
            ),
            "fifo_p99_ms": round(p99_fifo * 1e3, 3),
            **stats_metrics(
                slo_hist,
                prefix="slo_",
                suffix="_ms",
                keys=("p50", "p95"),
                scale=1e3,
                round_to=3,
            ),
            "slo_p99_ms": round(p99_slo * 1e3, 3),
            "p99_gain": round(gain, 2),
        },
    )
    print(
        f"\ndashboard tail latency ({len(CHEAP_TENANTS)} cheap tenants behind "
        f"{HEAVY_QUERIES} heavy queries): fifo p99 {p99_fifo * 1e3:.1f} ms vs "
        f"slo p99 {p99_slo * 1e3:.1f} ms ({gain:.2f}x)"
    )
    assert gain >= MIN_P99_GAIN, (
        f"cost-model scheduling improved dashboard p99 by only {gain:.2f}x "
        f"(required {MIN_P99_GAIN}x); fifo {p99_fifo * 1e3:.1f} ms, "
        f"slo {p99_slo * 1e3:.1f} ms"
    )
