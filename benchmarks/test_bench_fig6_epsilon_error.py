"""Figure 6 — relative error versus the per-query privacy budget epsilon.

Paper shape: the classic DP utility curve — error falls steeply as epsilon
grows from 0.1 to 1.3; SUM queries retain more utility than COUNT queries,
and the larger dataset is less affected by the noise.
"""

from __future__ import annotations

from repro.experiments.epsilon_analysis import (
    format_epsilon_analysis,
    run_epsilon_analysis,
)

EPSILONS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3)


def _check_epsilon_trend(points):
    for aggregation in {point.aggregation for point in points}:
        series = sorted(
            (p for p in points if p.aggregation == aggregation), key=lambda p: p.epsilon
        )
        # The tightest budget must be clearly worse than the loosest one.
        assert series[0].mean_relative_error > series[-1].mean_relative_error


def test_fig6_epsilon_adult(benchmark, adult, write_result, queries_per_point):
    points = run_epsilon_analysis(
        adult, epsilons=EPSILONS, queries_per_point=queries_per_point, seed=2
    )
    write_result("fig6_epsilon_adult", format_epsilon_analysis(points))
    _check_epsilon_trend(points)

    benchmark(
        lambda: adult.system.execute(
            "SELECT SUM(measure) FROM t WHERE 20 <= age AND age <= 60",
            epsilon=0.5,
            compute_exact=False,
        ).value
    )


def test_fig6_epsilon_amazon(benchmark, amazon, write_result, queries_per_point):
    points = run_epsilon_analysis(
        amazon, epsilons=EPSILONS, queries_per_point=queries_per_point, seed=2
    )
    write_result("fig6_epsilon_amazon", format_epsilon_analysis(points))
    _check_epsilon_trend(points)

    benchmark(
        lambda: amazon.system.execute(
            "SELECT SUM(measure) FROM t WHERE 50 <= day AND day <= 250",
            epsilon=0.5,
            compute_exact=False,
        ).value
    )
