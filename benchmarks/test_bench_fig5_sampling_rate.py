"""Figure 5 — relative error and speed-up versus sampling rate.

Paper shape: as the sampling rate grows from 5% to 20% the relative error
falls and the speed-up falls (accuracy/speed trade-off); the larger dataset
gains more speed-up than the smaller one.
"""

from __future__ import annotations

from repro.experiments.sampling_rate_analysis import (
    format_sampling_rate_analysis,
    run_sampling_rate_analysis,
)


def _check_tradeoff(points):
    for aggregation in {point.aggregation for point in points}:
        series = sorted(
            (p for p in points if p.aggregation == aggregation),
            key=lambda p: p.sampling_rate,
        )
        # Work speed-up must decrease as the sampling rate increases.
        speedups = [p.mean_work_speedup for p in series]
        assert speedups[0] > speedups[-1]


def test_fig5_sampling_rate_adult(benchmark, adult, write_result, queries_per_point):
    points = run_sampling_rate_analysis(
        adult,
        sampling_rates=(0.05, 0.10, 0.15, 0.20),
        queries_per_point=queries_per_point,
        seed=1,
    )
    write_result("fig5_sampling_rate_adult", format_sampling_rate_analysis(points))
    _check_tradeoff(points)

    benchmark(
        lambda: adult.system.execute(
            "SELECT COUNT(*) FROM t WHERE 20 <= age AND age <= 60", compute_exact=False
        ).value
    )


def test_fig5_sampling_rate_amazon(benchmark, amazon, write_result, queries_per_point):
    points = run_sampling_rate_analysis(
        amazon,
        sampling_rates=(0.05, 0.10, 0.15, 0.20),
        queries_per_point=queries_per_point,
        seed=1,
    )
    write_result("fig5_sampling_rate_amazon", format_sampling_rate_analysis(points))
    _check_tradeoff(points)
    # The larger (Amazon-like) dataset yields higher speed-ups at 5% than the
    # Adult-like dataset does at 20% — the paper's "more speed for larger data".
    assert max(p.mean_work_speedup for p in points) > 4

    benchmark(
        lambda: amazon.system.execute(
            "SELECT COUNT(*) FROM t WHERE 50 <= day AND day <= 250", compute_exact=False
        ).value
    )
