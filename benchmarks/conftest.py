"""Shared benchmark fixtures and helpers.

The benchmarks reproduce every table and figure of the paper's evaluation at
laptop scale (see DESIGN.md for the scale substitution).  Each benchmark

* times one representative protocol operation with ``pytest-benchmark``, and
* regenerates the corresponding figure/table as a text table, printed and
  written under ``benchmarks/results/`` so the numbers can be inspected and
  copied into EXPERIMENTS.md after a run.

Scale knobs (rows per dataset, queries per point) are environment-variable
overridable so the same harness can run closer to paper scale on a bigger
machine: ``REPRO_BENCH_ADULT_ROWS``, ``REPRO_BENCH_AMAZON_ROWS``,
``REPRO_BENCH_QUERIES_PER_POINT``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.scenarios import adult_scenario, amazon_scenario

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_DIR = Path(__file__).parent

ADULT_ROWS = int(os.environ.get("REPRO_BENCH_ADULT_ROWS", "200000"))
AMAZON_ROWS = int(os.environ.get("REPRO_BENCH_AMAZON_ROWS", "400000"))
QUERIES_PER_POINT = int(os.environ.get("REPRO_BENCH_QUERIES_PER_POINT", "6"))


def pytest_collection_modifyitems(items) -> None:
    """Mark every test collected from this directory as ``bench``.

    The marker lets the CI ``bench-smoke`` job select exactly the benchmark
    suite (``-m bench``) and run it at tiny, timing-gate-free sizes so the
    kernels stay exercised on every push without timing noise.
    """
    for item in items:
        if Path(item.fspath).parent == BENCH_DIR:
            item.add_marker(pytest.mark.bench)


def _write_result(name: str, text: str) -> None:
    """Print a figure/table rendition and persist it under ``results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def write_result():
    """Fixture form of the results writer.

    Benchmarks receive it as a fixture instead of importing from conftest —
    relative imports are unavailable because pytest collects these modules
    outside a package.
    """
    return _write_result


@pytest.fixture(scope="session")
def queries_per_point() -> int:
    """Workload size per figure point (``REPRO_BENCH_QUERIES_PER_POINT``)."""
    return QUERIES_PER_POINT


@pytest.fixture(scope="session")
def adult():
    """Adult-like scenario (paper: sr = 20%, cluster size 1% of a partition)."""
    return adult_scenario(num_rows=ADULT_ROWS, seed=0)


@pytest.fixture(scope="session")
def amazon():
    """Amazon-like scenario (paper: sr = 5%, cluster size 0.5% of a partition)."""
    return amazon_scenario(num_rows=AMAZON_ROWS, seed=0)
