"""Observability overhead benchmark: tracing on vs off, same workload.

Runs the batch-throughput workload (16 queries, ~100k-row federation)
against two identically-seeded systems — observability disabled (the
default hot path) and enabled at the default sampling rate — and measures
steady-state batch latency for each, interleaved, min-of-reps.

Two gates:

* **semantics** — the enabled run's answers and charges are bit-identical
  to the disabled run's (tracing consumes no randomness);
* **overhead** — enabled costs at most ``REPRO_BENCH_MAX_OBS_OVERHEAD``
  (5% default, env-relaxable for noisy shared runners) over disabled.

Each run appends an entry to ``results/BENCH_observability.json`` through
the shared harness (see :mod:`_harness` for the schema).
"""

from __future__ import annotations

import os
import time

from _harness import record_bench

from repro.config import ObservabilityConfig
from repro.core.system import FederatedAQPSystem
from repro.experiments.scenarios import adult_scenario
from repro.query.model import Aggregation

NUM_QUERIES = 16
NUM_ROWS = int(os.environ.get("REPRO_BENCH_OBS_ROWS", "100000"))
REPS = 9
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_OBS_OVERHEAD", "0.05"))


def _build(enabled: bool):
    scenario = adult_scenario(num_rows=NUM_ROWS, seed=0)
    config = scenario.system.config.with_observability(
        ObservabilityConfig(enabled=enabled)
    )
    system = FederatedAQPSystem.from_table(scenario.tensor, config=config)
    generator = scenario.workload_generator(seed=11)
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=0.02)
    queries = list(
        generator.generate(NUM_QUERIES, 3, Aggregation.COUNT, accept_batch=accept_batch)
    )
    return system, queries


def test_tracing_overhead_within_gate():
    off_system, queries = _build(enabled=False)
    on_system, on_queries = _build(enabled=True)
    assert [q.to_sql() for q in on_queries] == [q.to_sql() for q in queries]

    # Semantics: identical seeds, identical bits, observability on or off.
    off_values = [
        (r.value, r.epsilon_spent, r.delta_spent)
        for r in off_system.execute_batch(queries, compute_exact=False).results
    ]
    on_values = [
        (r.value, r.epsilon_spent, r.delta_spent)
        for r in on_system.execute_batch(queries, compute_exact=False).results
    ]
    assert on_values == off_values

    # Steady state, interleaved so machine drift hits both arms equally.
    off_seconds: list[float] = []
    on_seconds: list[float] = []
    for _ in range(REPS):
        start = time.perf_counter()
        off_system.execute_batch(queries, compute_exact=False)
        off_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        on_system.execute_batch(queries, compute_exact=False)
        on_seconds.append(time.perf_counter() - start)

    best_off = min(off_seconds)
    best_on = min(on_seconds)
    overhead = best_on / best_off - 1.0
    spans = len(on_system.obs.tracer.spans())

    record_bench(
        "observability",
        params={
            "num_queries": NUM_QUERIES,
            "federation_rows": NUM_ROWS,
            "num_providers": off_system.num_providers,
            "reps": REPS,
            "trace_sample_rate": on_system.config.observability.trace_sample_rate,
        },
        metrics={
            "disabled_qps": round(NUM_QUERIES / best_off, 1),
            "enabled_qps": round(NUM_QUERIES / best_on, 1),
            "overhead_fraction": round(overhead, 4),
            "spans_recorded": spans,
        },
    )
    print(
        f"\nobservability overhead: {overhead * 100:.2f}% "
        f"(off {NUM_QUERIES / best_off:.0f} q/s, on {NUM_QUERIES / best_on:.0f} q/s, "
        f"{spans} spans)"
    )
    assert spans > 0, "the enabled arm must actually be tracing"
    assert overhead <= MAX_OVERHEAD, (
        f"tracing at default sampling cost {overhead * 100:.2f}% "
        f"(gate {MAX_OVERHEAD * 100:.0f}%): off {best_off:.4f}s, on {best_on:.4f}s"
    )
