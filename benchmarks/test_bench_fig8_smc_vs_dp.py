"""Figure 8 — SMC result combination versus per-provider DP noise.

Paper shape: using SMC to share only the local estimates and sensitivities
adds negligible overhead, and injecting a single calibrated noise yields a
tighter noise range than summing one independent noise per provider.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.smc_comparison import (
    format_smc_comparison,
    run_smc_vs_dp_experiment,
)


def test_fig8_smc_vs_per_provider_dp(benchmark, adult, write_result):
    points = run_smc_vs_dp_experiment(
        adult, num_queries=5, repetitions=5, num_dimensions=2, seed=4
    )
    write_result("fig8_smc_vs_dp", format_smc_comparison(points))

    noise_smc = np.abs([point.noise_with_smc for point in points])
    noise_dp = np.abs([point.noise_without_smc for point in points])
    # A single calibrated noise is tighter on average than the sum of one
    # noise per provider (4 providers here).
    assert noise_smc.mean() < noise_dp.mean() * 1.5

    speedup_smc = np.array([point.speedup_with_smc for point in points])
    speedup_dp = np.array([point.speedup_without_smc for point in points])
    # SMC result sharing must not cost more than ~3x the plain DP path.
    assert speedup_smc.mean() > speedup_dp.mean() / 3

    query = "SELECT COUNT(*) FROM t WHERE 20 <= age AND age <= 60"
    benchmark(lambda: adult.system.execute(query, use_smc=True, compute_exact=False).value)
