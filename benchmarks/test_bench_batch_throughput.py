"""Batch engine micro-benchmark: queries/sec, batch vs per-query loop.

Runs a 16-query workload against a ~100k-row federation twice — once as a
sequential per-query loop (``system.execute`` per query) and once as a single
``system.execute_batch`` call — and records the throughput of each.  The
batch path must be at least 2x faster; its results are also checked to be
bit-identical to the sequential loop under the same seed.

Each run appends an entry to ``results/BENCH_batch_throughput.json`` through
the shared harness (see :mod:`_harness` for the schema) so the performance
trajectory across commits can be tracked.
"""

from __future__ import annotations

import os
import time

from _harness import record_bench

from repro.experiments.scenarios import adult_scenario
from repro.query.model import Aggregation

NUM_QUERIES = 16
NUM_ROWS = 100_000
REPS = 7
# Required batch-over-sequential speedup.  2x on a quiet machine; noisy
# shared CI runners can relax it via the environment without touching code.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))


def _scenario():
    return adult_scenario(num_rows=NUM_ROWS, seed=0)


def _workload(scenario):
    generator = scenario.workload_generator(seed=11)
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=0.02)
    return list(
        generator.generate(NUM_QUERIES, 3, Aggregation.COUNT, accept_batch=accept_batch)
    )


def test_batch_throughput_vs_sequential(benchmark):
    scenario = _scenario()
    queries = _workload(scenario)
    system = scenario.system

    # Same-seed equivalence: the batch engine must return exactly what the
    # per-query loop returns, so the throughput comparison is apples to
    # apples.
    loop_system = _scenario().system
    sequential_values = [
        loop_system.execute(query, compute_exact=False).value for query in queries
    ]
    batch_system = _scenario().system
    batch_values = [
        result.value
        for result in batch_system.execute_batch(queries, compute_exact=False).results
    ]
    assert batch_values == sequential_values

    # Warm the layouts and metadata caches, then measure steady state.
    system.execute_batch(queries, compute_exact=False)
    sequential_seconds = []
    batch_seconds = []
    for _ in range(REPS):
        start = time.perf_counter()
        for query in queries:
            system.execute(query, compute_exact=False)
        sequential_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        system.execute_batch(queries, compute_exact=False)
        batch_seconds.append(time.perf_counter() - start)

    best_sequential = min(sequential_seconds)
    best_batch = min(batch_seconds)
    sequential_qps = NUM_QUERIES / best_sequential
    batch_qps = NUM_QUERIES / best_batch
    speedup = batch_qps / sequential_qps

    record_bench(
        "batch_throughput",
        params={
            "num_queries": NUM_QUERIES,
            "federation_rows": NUM_ROWS,
            "num_providers": system.num_providers,
            "reps": REPS,
        },
        metrics={
            "sequential_qps": round(sequential_qps, 1),
            "batch_qps": round(batch_qps, 1),
            "speedup": round(speedup, 2),
        },
    )
    print(
        f"\nbatch throughput: {batch_qps:.0f} q/s vs sequential {sequential_qps:.0f} q/s "
        f"({speedup:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch path must be >= {MIN_SPEEDUP}x the per-query loop, got {speedup:.2f}x "
        f"(batch {batch_qps:.0f} q/s, sequential {sequential_qps:.0f} q/s)"
    )

    benchmark(lambda: system.execute_batch(queries, compute_exact=False).values)
