"""Section 6.1 — metadata space allocation.

Paper numbers: ~6.4 MB (64 KB/cluster) of metadata for Adult and ~11 MB
(56 KB/cluster) for Amazon Review — i.e. a small fraction of the stored
data.  The reproduced quantity to check is that ratio, since absolute sizes
scale with the synthetic dataset size.
"""

from __future__ import annotations

from repro.experiments.metadata_space import format_metadata_space, run_metadata_space


def test_metadata_space_allocation(benchmark, adult, amazon, write_result):
    points = run_metadata_space([adult, amazon])
    write_result("metadata_space", format_metadata_space(points))

    for point in points:
        assert point.metadata_bytes > 0
        # Metadata must stay a small fraction of the data it indexes.
        assert point.metadata_fraction < 0.5

    # Benchmark the offline pre-processing step itself (Algorithm 1) on one
    # provider's clustered table.
    from repro.storage.metadata import build_metadata

    provider = adult.system.providers[0]
    benchmark(lambda: build_metadata(provider.clustered).size_bytes())
