"""Section 6.1 — metadata space allocation.

Paper numbers: ~6.4 MB (64 KB/cluster) of metadata for Adult and ~11 MB
(56 KB/cluster) for Amazon Review — i.e. a small fraction of the stored
data.  The reproduced quantity to check is that ratio, since absolute sizes
scale with the synthetic dataset size.

Each run also appends the measured fractions to
``results/BENCH_metadata_space.json`` through the shared harness so the
footprint trajectory across commits can be tracked.
"""

from __future__ import annotations

import os

from _harness import record_bench

from repro.experiments.metadata_space import format_metadata_space, run_metadata_space

# Metadata must stay a small fraction of the data it indexes.  The fraction
# is size-dependent (per-cluster entry counts do not shrink with the table),
# so smoke-size CI runs relax the gate via the environment.
MAX_METADATA_FRACTION = float(os.environ.get("REPRO_BENCH_MAX_METADATA_FRACTION", "0.5"))


def test_metadata_space_allocation(benchmark, adult, amazon, write_result):
    points = run_metadata_space([adult, amazon])
    write_result("metadata_space", format_metadata_space(points))

    for point in points:
        assert point.metadata_bytes > 0
        assert point.metadata_fraction < MAX_METADATA_FRACTION

    record_bench(
        "metadata_space",
        params={"datasets": [point.dataset for point in points]},
        metrics={
            point.dataset: {
                "metadata_bytes": int(point.metadata_bytes),
                "metadata_fraction": round(point.metadata_fraction, 5),
                "bytes_per_cluster": round(point.metadata_bytes_per_cluster, 1),
            }
            for point in points
        },
    )

    # Benchmark the offline pre-processing step itself (Algorithm 1) on one
    # provider's clustered table.
    from repro.storage.metadata import build_metadata

    provider = adult.system.providers[0]
    benchmark(lambda: build_metadata(provider.clustered).size_bytes())
