"""Figure 1 — runtime cost of sharing rows vs sharing results under SMC.

Paper shape: sharing only per-provider results costs a small constant
(~0.04 s) while secret-sharing the matching rows is roughly 440x more
expensive on average and grows with the data.
"""

from __future__ import annotations

from repro.experiments.smc_comparison import (
    format_sharing_costs,
    run_sharing_cost_experiment,
)


def test_fig1_smc_row_vs_result_sharing(benchmark, adult, write_result):
    points = run_sharing_cost_experiment(adult, num_queries=12, num_dimensions=2, seed=0)
    write_result("fig1_smc_sharing", format_sharing_costs(points))

    ratios = [point.cost_ratio for point in points if point.matching_rows > 0]
    assert ratios, "every query matched zero rows — workload generation is broken"
    # Row sharing must be at least an order of magnitude more expensive.
    assert min(ratios) > 10
    assert sum(ratios) / len(ratios) > 50

    # Benchmark the cheap path the paper advocates: sharing only results.
    from repro.federation.smc import SMCSimulator

    simulator = SMCSimulator(num_parties=adult.system.num_providers, rng=0)
    benchmark(lambda: simulator.result_sharing_cost(adult.system.num_providers))
