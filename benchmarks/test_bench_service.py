"""Serving-layer benchmark: aggregate multi-tenant throughput via coalescing.

Eight tenants each submit a distinct workload to the
:class:`~repro.service.scheduler.SessionScheduler` twice:

* **serial** — ``max_batch_size=1``: every query is its own protocol batch,
  the per-tenant serial baseline (what running each tenant's traffic
  one query at a time costs);
* **coalesced** — one shared cross-tenant batch per drain, amortising the
  metadata pass and provider round-trips across the whole fleet.

The coalesced mode must deliver at least ``REPRO_BENCH_MIN_SPEEDUP`` (2x
default) the aggregate queries/sec of the serial mode, while remaining
*semantically identical*: per-tenant epsilon charges — and, thanks to the
per-``(tenant, sequence)`` noise streams, the DP answers themselves — are
bit-identical in both modes.

Each run appends an entry to ``results/BENCH_service.json`` through the
shared harness (see :mod:`_harness` for the schema).
"""

from __future__ import annotations

import os
import time

from _harness import record_bench

from repro.config import ServiceConfig
from repro.experiments.scenarios import adult_scenario
from repro.query.model import Aggregation
from repro.service import SessionScheduler, TenantRegistry

NUM_TENANTS = 8
QUERIES_PER_TENANT = 8
NUM_ROWS = int(os.environ.get("REPRO_BENCH_SERVICE_ROWS", "100000"))
REPS = 5
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))

TENANT_IDS = tuple(f"tenant-{index}" for index in range(NUM_TENANTS))


def _scenario():
    return adult_scenario(num_rows=NUM_ROWS, seed=0)


def _workloads(scenario):
    """One distinct workload per tenant (no cross-tenant predicate overlap)."""
    generator = scenario.workload_generator(seed=23)
    accept_batch = scenario.batch_acceptance_predicate(min_selectivity=0.02)
    queries = list(
        generator.generate(
            NUM_TENANTS * QUERIES_PER_TENANT,
            3,
            Aggregation.COUNT,
            accept_batch=accept_batch,
        )
    )
    return {
        tenant_id: queries[index * QUERIES_PER_TENANT : (index + 1) * QUERIES_PER_TENANT]
        for index, tenant_id in enumerate(TENANT_IDS)
    }


def _registry():
    registry = TenantRegistry()
    for tenant_id in TENANT_IDS:
        registry.register(tenant_id, total_epsilon=1e6, total_delta=1.0)
    return registry


def _serve(system, workloads, *, max_batch_size: int):
    scheduler = SessionScheduler(
        system,
        _registry(),
        config=ServiceConfig(
            max_batch_size=max_batch_size, max_pending=NUM_TENANTS * 2
        ),
    )
    start = time.perf_counter()
    for tenant_id in TENANT_IDS:
        scheduler.submit(tenant_id, workloads[tenant_id])
    answers = scheduler.drain()
    seconds = time.perf_counter() - start
    per_tenant = {
        answer.tenant_id: (answer.values, answer.epsilon_charged)
        for answer in answers
    }
    return per_tenant, seconds, scheduler.stats


def test_multi_tenant_coalescing_throughput():
    scenario = _scenario()
    workloads = _workloads(scenario)
    total_queries = NUM_TENANTS * QUERIES_PER_TENANT

    # Semantics first: identical per-tenant answers and epsilon charges in
    # both modes (fresh identically-seeded systems; the per-tenant noise
    # streams make coalescing invisible to every tenant).
    serial_state, _, _ = _serve(
        scenario.fresh_system(), workloads, max_batch_size=1
    )
    coalesced_state, _, coalesced_stats = _serve(
        scenario.fresh_system(), workloads, max_batch_size=total_queries
    )
    assert coalesced_state == serial_state
    assert coalesced_stats.cross_tenant_batches >= 1

    # Steady-state timing on one warmed system per mode.
    serial_system = scenario.fresh_system()
    coalesced_system = scenario.fresh_system()
    _serve(serial_system, workloads, max_batch_size=1)
    _serve(coalesced_system, workloads, max_batch_size=total_queries)
    serial_seconds = []
    coalesced_seconds = []
    for _ in range(REPS):
        _, seconds, _ = _serve(serial_system, workloads, max_batch_size=1)
        serial_seconds.append(seconds)
        _, seconds, _ = _serve(
            coalesced_system, workloads, max_batch_size=total_queries
        )
        coalesced_seconds.append(seconds)

    serial_qps = total_queries / min(serial_seconds)
    coalesced_qps = total_queries / min(coalesced_seconds)
    speedup = coalesced_qps / serial_qps

    record_bench(
        "service",
        params={
            "num_tenants": NUM_TENANTS,
            "queries_per_tenant": QUERIES_PER_TENANT,
            "federation_rows": NUM_ROWS,
            "reps": REPS,
        },
        metrics={
            "serial_qps": round(serial_qps, 1),
            "coalesced_qps": round(coalesced_qps, 1),
            "speedup": round(speedup, 2),
            "epsilon_per_tenant": QUERIES_PER_TENANT * 1.0,
        },
    )
    print(
        f"\nservice throughput ({NUM_TENANTS} tenants): coalesced {coalesced_qps:.0f} q/s "
        f"vs per-tenant serial {serial_qps:.0f} q/s ({speedup:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"cross-tenant coalescing delivered only {speedup:.2f}x aggregate throughput "
        f"(required {MIN_SPEEDUP}x); serial {serial_qps:.0f} q/s, "
        f"coalesced {coalesced_qps:.0f} q/s"
    )
