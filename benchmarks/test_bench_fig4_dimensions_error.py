"""Figure 4 — relative error versus number of query dimensions.

Paper shape: errors grow as the number of constrained dimensions grows
(the independence approximation of R degrades), and the larger dataset
(Amazon-like) shows lower relative errors than the Adult-like one.
"""

from __future__ import annotations

from repro.experiments.dimension_analysis import (
    format_dimension_analysis,
    run_dimension_analysis,
)
from repro.query.model import RangeQuery


def test_fig4_error_vs_dimensions_adult(benchmark, adult, write_result, queries_per_point):
    points = run_dimension_analysis(
        adult,
        dimension_counts=[2, 3, 4, 5, 6, 7],
        queries_per_point=queries_per_point,
        min_selectivity=0.002,
        seed=0,
    )
    write_result("fig4_dimensions_adult", format_dimension_analysis(points))
    by_dims = {
        (p.aggregation, p.num_dimensions): p.mean_relative_error for p in points
    }
    # Low-dimensional queries must be clearly more accurate than the widest ones.
    assert by_dims[("count", 2)] < by_dims[("count", 7)] * 3
    assert all(p.mean_relative_error >= 0 for p in points)

    query = RangeQuery.count({"age": (20, 60), "hours_per_week": (10, 70)})
    benchmark(lambda: adult.system.execute(query, compute_exact=False).value)


def test_fig4_error_vs_dimensions_amazon(benchmark, amazon, write_result, queries_per_point):
    points = run_dimension_analysis(
        amazon,
        dimension_counts=[2, 3, 4, 5],
        queries_per_point=queries_per_point,
        seed=0,
    )
    write_result("fig4_dimensions_amazon", format_dimension_analysis(points))
    assert all(p.mean_relative_error >= 0 for p in points)

    query = RangeQuery.count({"day": (50, 300), "helpful_votes": (0, 100)})
    benchmark(lambda: amazon.system.execute(query, compute_exact=False).value)
