"""Kernel-backend benchmark: numpy vs numba on the straddler row path.

Times the exact ``Q(C)`` batch kernel on a *sequentially* clustered table —
zone maps barely prune and nearly every covered (query, cluster) pair
straddles, so the whole workload lands on the row-evaluation kernels the
compiled tier replaces.  Two sizes (``rows // 10`` and ``rows``) are timed
under every available backend, with the backends asserted bit-identical and
their telemetry (fused pairs, jit/fallback hits, peak tile bytes) recorded.

The acceptance gate — compiled tier ``>=`` ``REPRO_BENCH_MIN_KERNEL_SPEEDUP``
(default 5x) over the numpy kernels at the full size — only applies when
numba is importable: the pure-NumPy fallback is a correctness path, not a
performance claim, so containers without numba record timings gate-free.

Entries append to ``results/BENCH_kernels.json`` via the shared harness.
Scale knob: ``REPRO_BENCH_KERNELS_ROWS`` (default 1 000 000).
"""

from __future__ import annotations

import os
import time

import numpy as np
from _harness import record_bench

from repro.config import ExecutionConfig
from repro.query.batch import QueryBatch
from repro.query.model import RangeQuery
from repro.storage.clustered_table import ClusteredTable
from repro.storage.kernels import numba_available
from repro.storage.layout import collect_kernel_telemetry
from repro.storage.schema import Dimension, Schema
from repro.storage.table import Table

KERNEL_ROWS = int(os.environ.get("REPRO_BENCH_KERNELS_ROWS", "1000000"))
MIN_KERNEL_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_KERNEL_SPEEDUP", "5.0"))
NUM_QUERIES = 8
REPS = 3
CLUSTER_SIZE = 1000
KEY_DOMAIN = 10_000

SCHEMA = Schema(
    (
        Dimension("key", 0, KEY_DOMAIN - 1),
        Dimension("aux", 0, 99),
        Dimension("cat", 0, 9),
    )
)


def _table(num_rows: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        SCHEMA,
        {
            "key": rng.integers(0, KEY_DOMAIN, num_rows),
            "aux": rng.integers(0, 100, num_rows),
            "cat": rng.integers(0, 10, num_rows),
        },
    )


def _workload(seed: int) -> QueryBatch:
    """Two-dimension boxes over a sequential layout: almost all straddlers."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(NUM_QUERIES):
        low = int(rng.integers(0, KEY_DOMAIN // 2))
        width = int(rng.integers(KEY_DOMAIN // 4, KEY_DOMAIN // 2))
        aux_low = int(rng.integers(0, 50))
        queries.append(
            RangeQuery.count(
                {"key": (low, low + width), "aux": (aux_low, aux_low + 40)}
            )
        )
    return QueryBatch(tuple(queries))


def _best_seconds(fn) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_backend_matrix():
    backends = ["numpy"] + (["numba"] if numba_available() else [])
    sizes = sorted({max(KERNEL_ROWS // 10, 1000), KERNEL_ROWS})
    batch = _workload(seed=3)
    matrix = []
    gate_speedup = None
    for num_rows in sizes:
        layout = ClusteredTable.from_table(_table(num_rows, seed=0), CLUSTER_SIZE).layout()
        reference = None
        timings: dict[str, float] = {}
        counters: dict[str, dict] = {}
        for backend in backends:
            execution = ExecutionConfig(
                prune=True, sorted_bisect=False, kernel_backend=backend
            )
            with collect_kernel_telemetry() as telemetry:
                values = layout.cluster_values(batch, execution=execution)
            if reference is None:
                reference = values
            # The tentpole contract: backends are bit-identical, always.
            assert np.array_equal(values, reference), (backend, num_rows)
            assert telemetry.backend == backend, (backend, telemetry.backend)
            timings[backend] = _best_seconds(
                lambda execution=execution: layout.cluster_values(
                    batch, execution=execution
                )
            )
            counters[backend] = {
                "jit_calls": telemetry.jit_calls,
                "fallback_calls": telemetry.fallback_calls,
                "pairs_fused": telemetry.pairs_fused,
                "pairs_scanned": telemetry.pairs_scanned,
                "rows_evaluated": telemetry.rows_evaluated,
                "max_tile_bytes": telemetry.max_tile_bytes,
            }
        speedup = (
            round(timings["numpy"] / timings["numba"], 2) if "numba" in timings else None
        )
        matrix.append(
            {
                "rows": num_rows,
                "seconds": {k: round(v, 6) for k, v in timings.items()},
                "qps": {k: round(NUM_QUERIES / v, 1) for k, v in timings.items()},
                "numba_speedup": speedup,
                "telemetry": counters,
            }
        )
        if num_rows == KERNEL_ROWS:
            gate_speedup = speedup

    record_bench(
        "kernels",
        params={
            "num_queries": NUM_QUERIES,
            "cluster_size": CLUSTER_SIZE,
            "reps": REPS,
            "sizes": sizes,
            "numba_available": numba_available(),
            "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
        },
        metrics={"matrix": matrix},
    )
    for point in matrix:
        line = ", ".join(f"{k} {v:.4f}s" for k, v in point["seconds"].items())
        print(f"\nkernels {point['rows']:>8} rows: {line}")

    if numba_available():
        assert gate_speedup is not None
        assert gate_speedup >= MIN_KERNEL_SPEEDUP, (
            f"compiled kernels must be >= {MIN_KERNEL_SPEEDUP}x the numpy kernels "
            f"at {KERNEL_ROWS} rows, got {gate_speedup:.2f}x"
        )
